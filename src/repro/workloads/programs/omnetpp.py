"""471.omnetpp-like workload: discrete-event network simulation.

A binary-heap future-event set driving message hops across a ring of
modules with queueing delays — irregular heap churn and pointer-style
indexing, like omnetpp's event scheduler.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_events = 550 * scale
    source = f"""
global heap_time[8192];
global heap_node[8192];
global heap_size;
global node_busy[64];

func heap_push(time, node) {{
    var i; var parent; var t;
    i = heap_size;
    heap_size = heap_size + 1;
    heap_time[i] = time;
    heap_node[i] = node;
    while (i > 0) {{
        parent = (i - 1) / 2;
        if (heap_time[parent] <= heap_time[i]) {{ break; }}
        t = heap_time[parent]; heap_time[parent] = heap_time[i];
        heap_time[i] = t;
        t = heap_node[parent]; heap_node[parent] = heap_node[i];
        heap_node[i] = t;
        i = parent;
    }}
    return heap_size;
}}

// Pop the earliest event; returns time * 64 + node packed in one word.
func heap_pop() {{
    var result; var i; var child; var t;
    result = heap_time[0] * 64 + heap_node[0];
    heap_size = heap_size - 1;
    heap_time[0] = heap_time[heap_size];
    heap_node[0] = heap_node[heap_size];
    i = 0;
    while (1) {{
        child = i * 2 + 1;
        if (child >= heap_size) {{ break; }}
        if (child + 1 < heap_size && heap_time[child + 1] < heap_time[child]) {{
            child = child + 1;
        }}
        if (heap_time[i] <= heap_time[child]) {{ break; }}
        t = heap_time[i]; heap_time[i] = heap_time[child];
        heap_time[child] = t;
        t = heap_node[i]; heap_node[i] = heap_node[child];
        heap_node[child] = t;
        i = child;
    }}
    return result;
}}

func main() {{
    var i; var packed; var now; var node; var target; var delay;
    var processed; var checksum;
    srand64({seed * 101 + 13});
    heap_size = 0;
    for (i = 0; i < 32; i = i + 1) {{
        heap_push(rand_below(50), i % 64);
    }}
    checksum = 0;
    processed = 0;
    while (heap_size > 0 && processed < {n_events}) {{
        packed = heap_pop();
        now = packed / 64;
        node = packed % 64;
        node_busy[node] = node_busy[node] + 1;
        // Forward the message to a neighbour with queueing delay.
        target = (node + 1 + rand_below(3)) % 64;
        delay = 1 + rand_below(9) + node_busy[target] % 4;
        if (heap_size < 4000) {{
            heap_push(now + delay, target);
        }}
        // Occasionally fan out a broadcast (burst of events).
        if (processed % 97 == 0 && heap_size < 3900) {{
            heap_push(now + 2, (node + 7) % 64);
            heap_push(now + 3, (node + 13) % 64);
        }}
        checksum = (checksum * 7 + now + node) % 1000000007;
        processed = processed + 1;
    }}
    for (i = 0; i < 64; i = i + 1) {{
        checksum = (checksum + node_busy[i] * i) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="omnetpp",
    suite="int",
    description="binary-heap discrete-event simulation of a module ring",
    build=build,
    n_inputs=1,
    mem_profile="medium",
)

"""464.h264ref-like workload: video motion estimation.

Sum-of-absolute-differences block search between two frames — nested-loop
2D array access with a modest, regularly-strided working set.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def _frame(seed: int, nbytes: int) -> bytes:
    rng = random.Random(seed * 911)
    value = 128
    out = bytearray()
    for _ in range(nbytes):
        value = max(0, min(255, value + rng.randint(-6, 6)))
        out.append(value)
    return bytes(out)


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    width = 64
    height = 48 * scale
    n_blocks = 4 * scale
    source = f"""
// SAD of one 8x8 block at (bx,by) vs (rx,ry): the inner loop of motion
// estimation.
func sad8(cur, ref, bx, by, rx, ry) {{
    var y; var x; var total; var a; var b; var diff;
    total = 0;
    for (y = 0; y < 8; y = y + 1) {{
        for (x = 0; x < 8; x = x + 1) {{
            a = peek8(cur + (by + y) * {width} + bx + x);
            b = peek8(ref + (ry + y) * {width} + rx + x);
            diff = a - b;
            if (diff < 0) {{ diff = 0 - diff; }}
            total = total + diff;
        }}
    }}
    return total;
}}

func main() {{
    var fd; var cur; var ref; var block; var bx; var by; var dx; var dy;
    var best; var cost; var checksum; var rx; var ry;
    fd = open("h264.cur");
    cur = mmap_anon({width * height + 16384});  // full-frame buffer
    read(fd, cur, {width * height});
    fd = open("h264.ref");
    ref = mmap_anon({width * height + 16384});  // full-frame buffer
    read(fd, ref, {width * height});
    srand64({seed * 59 + 9});
    checksum = 0;
    for (block = 0; block < {n_blocks}; block = block + 1) {{
        bx = 8 + rand_below({width} - 24);
        by = 8 + rand_below({height} - 24);
        best = 1000000;
        // Diamond search over a +-1 window.
        for (dy = -1; dy <= 1; dy = dy + 1) {{
            for (dx = -1; dx <= 1; dx = dx + 1) {{
                rx = bx + dx;
                ry = by + dy;
                cost = sad8(cur, ref, bx, by, rx, ry);
                if (cost < best) {{ best = cost; }}
            }}
        }}
        checksum = (checksum * 17 + best) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    files = {
        "h264.cur": _frame(seed, width * height),
        "h264.ref": _frame(seed + 100, width * height),
    }
    return source, files


BENCHMARK = Benchmark(
    name="h264ref",
    suite="int",
    description="8x8 SAD block motion search between two frames",
    build=build,
    n_inputs=2,
    mem_profile="medium",
)

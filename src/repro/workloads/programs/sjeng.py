"""458.sjeng-like workload: game-tree search.

Alpha-beta minimax over a synthetic game with a small evaluation table —
deep recursion, dense branching, and register-resident state.  The paper's
compute-bound long-runner: only ~2x little-core slowdown and a 20-billion-
cycle sweet spot in figure 9 (it is the longest of the sensitivity trio).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_positions = 70 * scale
    source = f"""
global eval_table[64];

// Static evaluation: pure register arithmetic on the position key.
func evaluate(pos) {{
    var score; var piece; var mobility;
    piece = pos % 64;
    if (piece < 0) {{ piece = piece + 64; }}
    mobility = (pos >> 6) % 28;
    if (mobility < 0) {{ mobility = mobility + 28; }}
    score = eval_table[piece] + mobility * 4 - 14;
    return score;
}}

// Generate the child position for move m (mixing, no memory).
func child_of(pos, move) {{
    var next;
    next = pos * 6364136223846793005 + move * 1442695040888963407 + 1;
    return next;
}}

// Alpha-beta negamax search.
func search(pos, depth, alpha, beta) {{
    var move; var score; var best;
    if (depth == 0) {{ return evaluate(pos); }}
    best = -1000000;
    move = 0;
    while (move < 5) {{
        score = -search(child_of(pos, move), depth - 1, -beta, -alpha);
        if (score > best) {{ best = score; }}
        if (best > alpha) {{ alpha = best; }}
        if (alpha >= beta) {{ break; }}
        move = move + 1;
    }}
    return best;
}}

func main() {{
    var i; var pos; var checksum;
    for (i = 0; i < 64; i = i + 1) {{
        eval_table[i] = (i * 37) % 100 - 50;
    }}
    srand64({seed * 17 + 3});
    checksum = 0;
    pos = {seed} * 715827883;
    for (i = 0; i < {n_positions}; i = i + 1) {{
        checksum = (checksum * 31 + search(pos, 3, -1000000, 1000000))
                   % 1000000007;
        pos = child_of(pos, checksum % 5);
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="sjeng",
    suite="int",
    description="alpha-beta game-tree search, compute-bound and recursive",
    build=build,
    n_inputs=1,
    mem_profile="low",
)

"""450.soplex-like workload: simplex linear programming.

Sparse matrix-vector products and ratio-test pivoting over a CSR-style
constraint matrix.  SPEC runs soplex as multiple shortish processes, which
shows up in its last-checker-sync overhead (paper §5.2.1).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_rows = 96 * scale
    nnz_per_row = 12
    n_pivots = 2 * scale
    source = f"""
global col_index[8192];
global float coef[8192];
global float solution[256];
global float row_value[256];

func main() {{
    var row; var k; var pivot; var idx; var best_row; var checksum;
    float value; float best; float ratio;
    srand64({seed * 211 + 31});
    // Build a CSR-ish sparse matrix: {nnz_per_row} nonzeros per row.
    for (row = 0; row < {n_rows}; row = row + 1) {{
        for (k = 0; k < {nnz_per_row}; k = k + 1) {{
            idx = row * {nnz_per_row} + k;
            col_index[idx] = rand_below(256);
            coef[idx] = float(1 + rand_below(100)) * 0.01;
        }}
    }}
    for (k = 0; k < 256; k = k + 1) {{ solution[k] = 1.0; }}
    checksum = 0;
    for (pivot = 0; pivot < {n_pivots}; pivot = pivot + 1) {{
        // Sparse mat-vec: row values from the current solution.
        best = -1000000.0;
        best_row = 0;
        for (row = 0; row < {n_rows}; row = row + 1) {{
            value = 0.0;
            for (k = 0; k < {nnz_per_row}; k = k + 1) {{
                idx = row * {nnz_per_row} + k;
                value = value + coef[idx] * solution[col_index[idx]];
            }}
            row_value[row % 256] = value;
            if (value > best) {{ best = value; best_row = row; }}
        }}
        // Ratio-test pivot: scale the entering column's variables.
        ratio = 1.0 / (best + 1.0);
        for (k = 0; k < {nnz_per_row}; k = k + 1) {{
            idx = best_row * {nnz_per_row} + k;
            solution[col_index[idx]] =
                solution[col_index[idx]] * (1.0 - ratio) + ratio;
        }}
        checksum = (checksum * 23 + best_row + int(best * 10.0))
                   % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="soplex",
    suite="fp",
    description="sparse simplex pivoting with CSR mat-vec products",
    build=build,
    n_inputs=2,
    mem_profile="medium",
)

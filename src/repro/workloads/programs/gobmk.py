"""445.gobmk-like workload: Go board analysis.

Influence propagation and liberty counting on a 19x19 board — small working
set, extremely branchy control flow, table lookups.  Low memory intensity:
checkers keep up comfortably on little cores.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_moves = 10 * scale
    source = f"""
global board[361];
global influence[361];

// Count liberties (empty orthogonal neighbours) of a point.
func liberties(pos) {{
    var row; var col; var count;
    row = pos / 19;
    col = pos % 19;
    count = 0;
    if (row > 0 && board[pos - 19] == 0) {{ count = count + 1; }}
    if (row < 18 && board[pos + 19] == 0) {{ count = count + 1; }}
    if (col > 0 && board[pos - 1] == 0) {{ count = count + 1; }}
    if (col < 18 && board[pos + 1] == 0) {{ count = count + 1; }}
    return count;
}}

// One influence-propagation relaxation pass; returns the board "tension".
func propagate() {{
    var pos; var total; var inf;
    total = 0;
    for (pos = 19; pos < 342; pos = pos + 1) {{
        inf = influence[pos] * 2 + influence[pos - 19] + influence[pos + 19];
        if (pos % 19 != 0) {{ inf = inf + influence[pos - 1]; }}
        if (pos % 19 != 18) {{ inf = inf + influence[pos + 1]; }}
        inf = inf / 6;
        if (board[pos] == 1) {{ inf = inf + 64; }}
        if (board[pos] == 2) {{ inf = inf - 64; }}
        influence[pos] = inf;
        if (inf > 0) {{ total = total + 1; }}
        if (inf < 0) {{ total = total - 1; }}
    }}
    return total;
}}

func main() {{
    var move; var pos; var color; var checksum; var libs; var pass;
    srand64({seed * 23 + 1});
    checksum = 0;
    color = 1;
    for (move = 0; move < {n_moves}; move = move + 1) {{
        pos = rand_below(361);
        if (board[pos] == 0) {{
            libs = liberties(pos);
            if (libs > 0) {{
                board[pos] = color;
                color = 3 - color;
            }}
        }}
        for (pass = 0; pass < 1; pass = pass + 1) {{
            checksum = (checksum * 13 + propagate()) % 1000000007;
        }}
    }}
    for (pos = 0; pos < 361; pos = pos + 1) {{
        checksum = (checksum + board[pos] * pos) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="gobmk",
    suite="int",
    description="Go board influence propagation and liberty counting",
    build=build,
    n_inputs=2,
    mem_profile="low",
)

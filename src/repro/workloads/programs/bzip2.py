"""401.bzip2-like workload: byte-stream compression.

Run-length encoding + move-to-front transform over byte buffers read from
an input file, like bzip2's BWT pipeline stages.  SPEC runs bzip2 on six
inputs as six separate short processes, which is what makes its
last-checker-sync overhead visible (paper §5.2.1); we keep that structure.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def _make_input(seed: int, nbytes: int) -> bytes:
    """Compressible byte stream: runs + skewed symbol distribution."""
    rng = random.Random(seed * 1013)
    out = bytearray()
    while len(out) < nbytes:
        if rng.random() < 0.4:
            out.extend([rng.randrange(16)] * rng.randint(3, 20))
        else:
            out.append(rng.randrange(256) if rng.random() < 0.3
                       else rng.randrange(32))
    return bytes(out[:nbytes])


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    nbytes = 384 * scale
    source = f"""
global mtf_table[64];
global freq[256];

// Move-to-front encode one byte; returns its index before the move.
func mtf_encode(value) {{
    var i; var j; var found;
    found = 0;
    i = 0;
    while (i < 64) {{
        if (mtf_table[i] == value) {{ found = i; break; }}
        i = i + 1;
    }}
    j = found;
    while (j > 0) {{
        mtf_table[j] = mtf_table[j - 1];
        j = j - 1;
    }}
    mtf_table[0] = value;
    return found;
}}

func main() {{
    var fd; var buf; var n; var i; var byte; var run; var prev;
    var checksum; var code;
    fd = open("bzip2.in");
    buf = mmap_anon({max(4096, nbytes)});
    n = read(fd, buf, {nbytes});
    for (i = 0; i < 64; i = i + 1) {{ mtf_table[i] = i; }}
    checksum = 0;
    prev = -1;
    run = 0;
    for (i = 0; i < n; i = i + 1) {{
        byte = peek8(buf + i) % 64;
        if (byte == prev) {{
            run = run + 1;
        }} else {{
            if (run > 0) {{
                code = mtf_encode(prev);
                freq[code] = freq[code] + run;
                checksum = (checksum * 31 + code * run) % 1000000007;
            }}
            prev = byte;
            run = 1;
        }}
    }}
    if (run > 0) {{
        code = mtf_encode(prev);
        freq[code] = freq[code] + run;
        checksum = (checksum * 31 + code * run) % 1000000007;
    }}
    for (i = 0; i < 64; i = i + 1) {{
        checksum = (checksum + freq[i] * i) % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {"bzip2.in": _make_input(seed, nbytes)}


BENCHMARK = Benchmark(
    name="bzip2",
    suite="int",
    description="RLE + move-to-front byte compression over file input",
    build=build,
    n_inputs=6,
    mem_profile="medium",
)

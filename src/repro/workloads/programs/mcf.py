"""429.mcf-like workload: memory-bound pointer chasing.

Network-simplex-style traversal of a large node/arc structure laid out in
heap memory.  The defining property is a working set far beyond any cache
with dependent (pointer-chasing) accesses and scattered writes: the paper's
most memory-intensive integer benchmark, with a >4x little-core slowdown,
the highest fork+COW overhead, and a 5-billion-cycle sweet spot in
figure 9.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_nodes = 16384 * scale        # 16k nodes x 2 words = 256 KB heap
    n_steps = 7000 * scale
    source = f"""
func main() {{
    var nodes; var i; var cur; var pot; var checksum; var step;
    var addr; var flow;
    // nodes[i] = (potential, flow); successors are computed (a scrambled
    // permutation walk), so every hop is a dependent scattered access.
    nodes = sbrk({n_nodes} * 16 + 131072);
    // Potentials initialized from the kernel RNG in one call (recorded
    // and replayed wholesale for checkers).
    getrandom(nodes, {n_nodes} * 16 + 131072);
    checksum = 0;
    cur = {seed % 1000 + 1};
    for (step = 0; step < {n_steps}; step = step + 1) {{
        addr = nodes + cur * 16;
        pot = peek64(addr);
        flow = peek64(addr + 8);
        // Price update + flow push along the arc (scattered writes).
        poke64(addr, pot + 1);
        poke64(addr + 8, flow + (pot & 255));
        // Arc scan: read-only probe of a distant candidate node.
        checksum = checksum + (peek64(addr + 131072) & 15);
        checksum = checksum + (pot & 255) + (flow & 255);
        cur = (cur * 40503 + step) % {n_nodes};
        if (cur < 0) {{ cur = 0 - cur; }}
    }}
    checksum = checksum % 1000000007;
    // Reduction over part of the network (strided streaming pass).
    for (i = 0; i < {n_nodes}; i = i + 4) {{
        checksum = (checksum + (peek64(nodes + i * 16 + 8) & 4095))
                   % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="mcf",
    suite="int",
    description="network-simplex pointer chasing over a large heap",
    build=build,
    n_inputs=1,
    mem_profile="high",
)

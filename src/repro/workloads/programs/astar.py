"""473.astar-like workload: grid pathfinding.

Repeated Dijkstra-style flood relaxations over a 2D cost grid with an
explicit frontier queue — mixed regular/irregular access over a
medium-sized map.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    side = 48
    n_queries = 1 * scale
    source = f"""
global cost[2304];
global dist[2304];
global queue[8192];

func main() {{
    var q; var i; var head; var tail; var pos; var d; var next;
    var checksum; var row; var col; var nd;
    srand64({seed * 67 + 21});
    for (i = 0; i < {side * side}; i = i + 1) {{
        cost[i] = 1 + rand_below(9);
    }}
    checksum = 0;
    for (q = 0; q < {n_queries}; q = q + 1) {{
        for (i = 0; i < {side * side}; i = i + 1) {{ dist[i] = 1000000; }}
        pos = rand_below({side * side});
        dist[pos] = 0;
        queue[0] = pos;
        head = 0;
        tail = 1;
        while (head < tail && head < 800) {{
            pos = queue[head % 4096];
            head = head + 1;
            d = dist[pos];
            row = pos / {side};
            col = pos % {side};
            // relax the four neighbours
            if (row > 0) {{
                next = pos - {side};
                nd = d + cost[next];
                if (nd < dist[next]) {{
                    dist[next] = nd;
                    queue[tail % 4096] = next;
                    tail = tail + 1;
                }}
            }}
            if (row < {side - 1}) {{
                next = pos + {side};
                nd = d + cost[next];
                if (nd < dist[next]) {{
                    dist[next] = nd;
                    queue[tail % 4096] = next;
                    tail = tail + 1;
                }}
            }}
            if (col > 0) {{
                next = pos - 1;
                nd = d + cost[next];
                if (nd < dist[next]) {{
                    dist[next] = nd;
                    queue[tail % 4096] = next;
                    tail = tail + 1;
                }}
            }}
            if (col < {side - 1}) {{
                next = pos + 1;
                nd = d + cost[next];
                if (nd < dist[next]) {{
                    dist[next] = nd;
                    queue[tail % 4096] = next;
                    tail = tail + 1;
                }}
            }}
        }}
        for (i = 0; i < {side * side}; i = i + {side}) {{
            checksum = (checksum + dist[i]) % 1000000007;
        }}
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="astar",
    suite="int",
    description="Dijkstra-style flood relaxation over a cost grid",
    build=build,
    n_inputs=1,
    mem_profile="medium",
)

"""433.milc-like workload: lattice QCD streaming.

Complex 3x3 (SU(3)) matrix-vector products streamed across every site of a
4D lattice stored in heap memory — long unit-stride floating-point streams
over a working set far beyond cache, the paper's archetypal
memory-intensive FP benchmark (high contention, frequent checker
migration).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_sites = 2048 * scale     # x 18 doubles (3x3 complex) = 288 KB
    n_iters = 1 * scale
    source = f"""
global float vec_re[3];
global float vec_im[3];

func main() {{
    var links; var site; var it; var row; var col; var base; var checksum;
    float acc_re; float acc_im; float mre; float mim; float vr; float vi;
    links = mmap_anon({n_sites} * 144);
    // Initialize the link elements the kernel touches (streaming writes).
    for (site = 0; site < {n_sites}; site = site + 1) {{
        base = links + site * 144;
        for (row = 0; row < 3; row = row + 1) {{
            col = row * 6;
            pokef(base + col * 8, float((site * 31 + col * 7) % 97) * 0.01);
            pokef(base + (col + 1) * 8,
                  float((site * 17 + col * 13) % 89) * 0.01);
        }}
        pokef(base + 16 * 8, 0.0);
    }}
    vec_re[0] = 0.5; vec_re[1] = -0.25; vec_re[2] = 0.125;
    vec_im[0] = 0.1; vec_im[1] = 0.2;  vec_im[2] = -0.3;
    checksum = 0;
    for (it = 0; it < {n_iters}; it = it + 1) {{
        acc_re = 0.0;
        acc_im = 0.0;
        for (site = 0; site < {n_sites}; site = site + 1) {{
            base = links + site * 144;
            for (row = 0; row < 3; row = row + 1) {{
                mre = peekf(base + (row * 6) * 8);
                mim = peekf(base + (row * 6 + 1) * 8);
                vr = vec_re[row];
                vi = vec_im[row];
                // complex multiply-accumulate: (mre+i*mim)*(vr+i*vi)
                acc_re = acc_re + mre * vr - mim * vi;
                acc_im = acc_im + mre * vi + mim * vr;
            }}
            // scattered update back into the lattice
            pokef(base + 16 * 8, acc_re * 0.0001);
        }}
        checksum = (checksum + int(acc_re * 100.0) + int(acc_im * 10.0))
                   % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="milc",
    suite="fp",
    description="SU(3)-style complex matrix streaming over a big lattice",
    build=build,
    n_inputs=1,
    mem_profile="high",
)

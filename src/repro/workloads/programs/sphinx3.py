"""482.sphinx3-like workload: speech recognition scoring.

Gaussian mixture model log-likelihood evaluation of acoustic feature
frames — dot-product-style FP loops over medium-sized senone tables with a
data-dependent best-scoring search.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def _features(seed: int, n_frames: int, dims: int) -> bytes:
    rng = random.Random(seed * 509)
    out = bytearray()
    for _ in range(n_frames * dims):
        out += struct.pack("<d", rng.uniform(-1.0, 1.0))
    return bytes(out)


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    n_frames = 24 * scale
    n_senones = 24
    dims = 8
    source = f"""
global float mean[6144];
global float variance[6144];
global float score[32];

func main() {{
    var fd; var feats; var frame; var s; var d; var best_senone;
    var checksum; var base;
    float x; float diff; float ll; float best;
    fd = open("sphinx.feat");
    feats = mmap_anon({max(4096, n_frames * dims * 8)});
    read(fd, feats, {n_frames * dims * 8});
    for (s = 0; s < {n_senones}; s = s + 1) {{
        for (d = 0; d < {dims}; d = d + 1) {{
            mean[s * {dims} + d] = float((s * 13 + d * 7) % 21 - 10) * 0.1;
            variance[s * {dims} + d] = 0.5 + float((s + d) % 5) * 0.2;
        }}
    }}
    checksum = 0;
    for (frame = 0; frame < {n_frames}; frame = frame + 1) {{
        base = feats + frame * {dims * 8};
        best = -100000.0;
        best_senone = 0;
        for (s = 0; s < {n_senones}; s = s + 1) {{
            ll = 0.0;
            for (d = 0; d < {dims}; d = d + 1) {{
                x = peekf(base + d * 8);
                diff = x - mean[s * {dims} + d];
                ll = ll - diff * diff / variance[s * {dims} + d];
            }}
            score[s % 32] = ll;
            if (ll > best) {{ best = ll; best_senone = s; }}
        }}
        checksum = (checksum * 31 + best_senone + int(best * 10.0) + 500)
                   % 1000000007;
    }}
    print_int(checksum);
}}
"""
    return source, {"sphinx.feat": _features(seed, n_frames, dims)}


BENCHMARK = Benchmark(
    name="sphinx3",
    suite="fp",
    description="GMM log-likelihood scoring of acoustic frames",
    build=build,
    n_inputs=1,
    mem_profile="medium",
)

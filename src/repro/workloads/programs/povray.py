"""453.povray-like workload: ray tracing.

Ray-sphere intersection with diffuse shading over a small scene — dense
floating-point arithmetic (dot products, square roots) on register-resident
state with almost no memory traffic.  Compute-bound like the real povray.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.registry import Benchmark


def build(scale: int = 1, seed: int = 1) -> Tuple[str, Dict[str, bytes]]:
    width = 16 * scale
    height = 12 * scale
    source = f"""
global float sphere_x[8];
global float sphere_y[8];
global float sphere_z[8];
global float sphere_r[8];

// Nearest ray-sphere hit along (dx,dy,1) from origin; returns distance*1000
// or -1.  Uses the quadratic formula with a Newton sqrt.
func trace(float dx, float dy) {{
    var s; var best_milli;
    float ox; float oy; float oz; float b; float c; float disc;
    float root; float t; float best;
    best = 100000.0;
    best_milli = -1;
    s = 0;
    while (s < 8) {{
        ox = 0.0 - sphere_x[s];
        oy = 0.0 - sphere_y[s];
        oz = 0.0 - sphere_z[s];
        b = ox * dx + oy * dy + oz;
        c = ox * ox + oy * oy + oz * oz - sphere_r[s] * sphere_r[s];
        disc = b * b - c;
        if (disc > 0.0) {{
            root = float(fsqrt(disc));
            t = (0.0 - b) - root;
            if (t > 0.01 && t < best) {{
                best = t;
                best_milli = int(t * 1000.0);
            }}
        }}
        s = s + 1;
    }}
    return best_milli;
}}

func main() {{
    var px; var py; var hit; var checksum;
    float dx; float dy;
    px = 0;
    while (px < 8) {{
        sphere_x[px] = float(px * 3 - 12) * 0.5;
        sphere_y[px] = float((px * 5) % 7 - 3) * 0.4;
        sphere_z[px] = 4.0 + float(px % 3);
        sphere_r[px] = 0.8 + float(px % 4) * 0.3;
        px = px + 1;
    }}
    checksum = 0;
    for (py = 0; py < {height}; py = py + 1) {{
        for (px = 0; px < {width}; px = px + 1) {{
            dx = (float(px) - {width / 2.0}) * 0.08;
            dy = (float(py) - {height / 2.0}) * 0.08;
            hit = trace(dx, dy);
            checksum = (checksum * 3 + hit + 2) % 1000000007;
        }}
    }}
    print_int(checksum);
}}
"""
    return source, {}


BENCHMARK = Benchmark(
    name="povray",
    suite="fp",
    description="ray-sphere intersection rendering, compute-bound FP",
    build=build,
    n_inputs=1,
    mem_profile="low",
)

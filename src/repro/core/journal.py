"""Durable, checksummed JSONL journals.

The campaign engine (:mod:`repro.campaign`) streams every completed task
to an append-only JSONL file so a crashed fleet — worker *or* supervisor
— can resume from what already finished instead of starting over.  The
format reuses the R/R log's integrity discipline
(:mod:`repro.core.rr_log`): each line carries a monotonic sequence
number and an XXH3-64 content checksum, verified on read, so storage rot
surfaces as a typed ``journal_integrity`` error instead of silently
poisoning a resumed campaign.

One line per record::

    {"b": {...body...}, "q": <seq>, "x": "0x<16 hex>"}

``q`` is the record's position in the journal (0-based, headers
included); ``x`` is the XXH3-64 of the canonical JSON encoding of
``[q, body]``.  Canonical means ``sort_keys`` + compact separators, so
the checksum is independent of dict insertion order.

Durability follows the classic sink cadence: ``flush_every_n`` lines per
``flush()`` (default 1 — every record survives a supervisor SIGKILL) and
``fsync_every_n`` lines per ``os.fsync`` (default off; turn on to
survive the whole machine).  A writer killed mid-line leaves a torn
final line; :func:`read_journal` tolerates exactly that — a valid-JSON
record with a *bad checksum* is corruption and raises, but an
unparseable final line is dropped as the expected signature of a crash.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.common.errors import JournalIntegrityError
from repro.hashing import Xxh3_64

__all__ = [
    "JournalWriter",
    "journal_checksum",
    "read_journal",
]


def _canonical(doc: Any) -> bytes:
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def journal_checksum(seq: int, body: Dict[str, Any]) -> int:
    """XXH3-64 over the canonical encoding of ``[seq, body]``.

    Covering the sequence number means a record spliced in from another
    position (or another journal) fails verification even when its body
    is individually intact.
    """
    return Xxh3_64().update(_canonical([seq, body])).digest()


class JournalWriter:
    """Append-only JSONL writer with per-record integrity metadata.

    ``start_seq`` continues an existing journal: resume re-opens the
    file in append mode with ``start_seq=len(existing records)`` so the
    sequence stays gapless across crashes.
    """

    def __init__(self, path: str, flush_every_n: int = 1,
                 fsync_every_n: Optional[int] = None,
                 start_seq: int = 0):
        if flush_every_n < 1:
            raise ValueError("flush_every_n must be >= 1")
        if fsync_every_n is not None and fsync_every_n < 1:
            raise ValueError("fsync_every_n must be >= 1 or None")
        self.path = path
        self.flush_every_n = flush_every_n
        self.fsync_every_n = fsync_every_n
        self._seq = start_seq
        self._since_flush = 0
        self._since_fsync = 0
        self._file = open(path, "a", encoding="utf-8")

    @property
    def seq(self) -> int:
        """Sequence number the next ``append`` will stamp."""
        return self._seq

    def append(self, body: Dict[str, Any]) -> int:
        """Write one record; returns the sequence number it received."""
        seq = self._seq
        record = {"b": body, "q": seq,
                  "x": f"{journal_checksum(seq, body):#018x}"}
        self._file.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        self._seq += 1
        self._since_flush += 1
        self._since_fsync += 1
        if self._since_flush >= self.flush_every_n:
            self._file.flush()
            self._since_flush = 0
            if self.fsync_every_n is not None \
                    and self._since_fsync >= self.fsync_every_n:
                os.fsync(self._file.fileno())
                self._since_fsync = 0
        return seq

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        if self.fsync_every_n is not None:
            os.fsync(self._file.fileno())
        self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str) -> List[Dict[str, Any]]:
    """Read and verify a journal; returns the record bodies in order.

    * A torn **final** line (invalid JSON, or not newline-terminated) is
      the expected residue of a crashed writer: it is dropped and the
      records before it are returned.
    * Invalid JSON anywhere **before** the final line, a sequence number
      that does not match the record's position, or a checksum mismatch
      is corruption: :class:`JournalIntegrityError` (typed
      ``journal_integrity``) with the offending position.
    """
    with open(path, "r", encoding="utf-8") as f:
        raw = f.read()
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()                     # trailing newline, the normal case
    bodies: List[Dict[str, Any]] = []
    last = len(lines) - 1
    for position, line in enumerate(lines):
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
            body, seq, stored = record["b"], record["q"], record["x"]
        except (ValueError, KeyError, TypeError) as exc:
            if position == last:
                break                   # torn tail of a crashed writer
            raise JournalIntegrityError(
                f"journal {path}: unparseable record at line "
                f"{position}: {exc}", position=position) from exc
        if seq != position:
            raise JournalIntegrityError(
                f"journal {path}: record at line {position} carries "
                f"sequence number {seq} — reordered or spliced",
                position=position)
        actual = journal_checksum(seq, body)
        if f"{actual:#018x}" != stored:
            raise JournalIntegrityError(
                f"journal {path}: record {position} checksum mismatch: "
                f"stored {stored}, recomputed {actual:#018x}",
                position=position)
        bodies.append(body)
    return bodies

"""Parallaft: runtime-based CPU fault tolerance via heterogeneous
parallelism — the paper's primary contribution.
"""

from repro.core.checker_sched import CheckerScheduler
from repro.core.comparator import (
    ComparisonResult,
    StateComparator,
    VoteResult,
)
from repro.core.config import (
    ComparisonStrategy,
    DirtyPageBackend,
    ExecPointCounter,
    ParallaftConfig,
    RuntimeMode,
)
from repro.core.dirty_tracker import DirtyPageTracker
from repro.core.exec_point import (
    ExecPoint,
    ExecPointReplayer,
    ReplayOutcome,
    ReplayStop,
    ReplayStopKind,
)
from repro.core.rr_log import (
    NondetRecord,
    RrCursor,
    RrLog,
    SignalRecord,
    SyscallRecord,
)
from repro.core.runtime import Parallaft, protect
from repro.core.segment import Replica, Segment, SegmentStatus
from repro.core.stats import DetectedError, RunStats

__all__ = [
    "Parallaft",
    "protect",
    "ParallaftConfig",
    "RuntimeMode",
    "DirtyPageBackend",
    "ExecPointCounter",
    "ComparisonStrategy",
    "Segment",
    "SegmentStatus",
    "Replica",
    "RunStats",
    "DetectedError",
    "ExecPoint",
    "ExecPointReplayer",
    "ReplayOutcome",
    "ReplayStop",
    "ReplayStopKind",
    "RrLog",
    "RrCursor",
    "SyscallRecord",
    "SignalRecord",
    "NondetRecord",
    "StateComparator",
    "ComparisonResult",
    "VoteResult",
    "DirtyPageTracker",
    "CheckerScheduler",
]

"""Dirty-page tracking (paper §4.4).

Only modified pages need comparing at a segment end: unmodified pages still
share physical frames with the checkpoint, so their contents are equal by
construction.  Two backends, matching the paper:

* ``SOFT_DIRTY`` (x86_64): the kernel's soft-dirty PTE bit; cleared at
  segment start, read at segment end.
* ``MAP_COUNT`` (AArch64): the modified ``PAGEMAP_SCAN`` ioctl — a page
  whose frame is mapped exactly once is private to the process (modified or
  newly mapped since the last checkpoint fork); a page mapped more than once
  still shares its frame with checkpoint/checker processes, hence is
  unmodified.  Requires no clearing pass, but only works while checkpoint
  forks are alive.
"""

from __future__ import annotations

from typing import List, Set

from repro.core.config import DirtyPageBackend
from repro.kernel.process import Process


class DirtyPageTracker:
    def __init__(self, backend: DirtyPageBackend, page_size: int):
        self.backend = backend
        self.page_size = page_size
        #: pages scanned/cleared so far (cost accounting)
        self.pages_cleared = 0
        self.pages_scanned = 0
        #: Fault-injection hook (``repro.faults.infra`` dirty-miss model):
        #: vpns silently dropped from every scan, modeling a stuck/lost
        #: soft-dirty bit or a PAGEMAP_SCAN under-report.  The tracker is
        #: shared by the main's finalize scan and the checker's replay
        #: scan, so a suppressed vpn vanishes from the comparison union
        #: entirely — the escape channel ``clean_page_audit`` defends.
        self.suppressed_vpns: Set[int] = set()
        self.suppressed_hits = 0

    def begin_segment(self, proc: Process) -> int:
        """Reset tracking at a segment start; returns pages touched (cost).

        Soft-dirty needs an explicit clearing pass over the page table;
        map-count needs nothing (the checkpoint fork itself resets sharing).
        """
        if self.backend == DirtyPageBackend.SOFT_DIRTY:
            pages = proc.mem.mapped_pages
            proc.mem.clear_soft_dirty()
            self.pages_cleared += pages
            return pages
        return 0

    def dirty_vpns(self, proc: Process) -> List[int]:
        """Pages of ``proc`` modified since its segment began."""
        self.pages_scanned += proc.mem.mapped_pages
        if self.backend == DirtyPageBackend.SOFT_DIRTY:
            vpns = proc.mem.soft_dirty_vpns()
        else:
            vpns = proc.mem.map_count_dirty_vpns()
        if self.suppressed_vpns:
            kept = [v for v in vpns if v not in self.suppressed_vpns]
            self.suppressed_hits += len(vpns) - len(kept)
            return kept
        return vpns

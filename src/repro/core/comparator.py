"""Program-state comparison (paper §3.3, §4.4).

At the end of each segment the checker's state must equal the checkpoint
taken from the main at the same execution point.  State = all registers +
the PC + all modified memory.  To avoid copying page contents between
processes, Parallaft injects hasher code into both processes and compares
XXH3-64 digests of the modified pages only; we model the same structure (and
its cost) and also provide the full-memory strawman for the ablation.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.config import ComparisonStrategy
from repro.hashing import Xxh3_64
from repro.kernel.process import Process


class ComparisonResult:
    __slots__ = ("match", "reason", "mismatched_vpns", "register_mismatch",
                 "pc_mismatch", "bytes_hashed", "pages_compared")

    def __init__(self, match: bool, reason: str = "",
                 mismatched_vpns: Optional[List[int]] = None,
                 register_mismatch: bool = False,
                 pc_mismatch: bool = False,
                 bytes_hashed: int = 0,
                 pages_compared: int = 0):
        self.match = match
        self.reason = reason
        self.mismatched_vpns = mismatched_vpns or []
        self.register_mismatch = register_mismatch
        self.pc_mismatch = pc_mismatch
        self.bytes_hashed = bytes_hashed
        self.pages_compared = pages_compared

    def __repr__(self) -> str:
        status = "match" if self.match else f"MISMATCH({self.reason})"
        return f"ComparisonResult({status}, pages={self.pages_compared})"

    def describe(self) -> str:
        """Human-readable divergence summary for error reports."""
        if self.match:
            return "match"
        if self.reason == "pc":
            return "program counters diverge"
        if self.reason == "registers":
            return "register files diverge"
        if self.reason == "memory":
            shown = ", ".join(hex(v) for v in self.mismatched_vpns[:4])
            extra = len(self.mismatched_vpns) - 4
            if extra > 0:
                shown += f", +{extra} more"
            return (f"{len(self.mismatched_vpns)} dirty page(s) diverge "
                    f"(vpn {shown})")
        return self.reason


class StateComparator:
    def __init__(self, strategy: ComparisonStrategy, page_size: int):
        self.strategy = strategy
        self.page_size = page_size

    def compare(self, checker: Process, checkpoint: Process,
                dirty_vpns: Optional[Set[int]] = None) -> ComparisonResult:
        """Compare checker state against the end-of-segment checkpoint.

        ``dirty_vpns`` is the union of pages modified by the main during the
        segment and by the checker during its replay; pages outside it share
        frames with the segment-start state on both sides and are equal by
        construction (tested by ``test_dirty_union_equals_full_compare``).
        """
        if checker.cpu.pc != checkpoint.cpu.pc:
            return ComparisonResult(False, "pc", pc_mismatch=True)
        if checker.cpu.regs.snapshot() != checkpoint.cpu.regs.snapshot():
            return ComparisonResult(False, "registers",
                                    register_mismatch=True)

        if self.strategy == ComparisonStrategy.FULL_MEMORY:
            vpns = sorted(set(checker.mem.pages) | set(checkpoint.mem.pages))
        else:
            if dirty_vpns is None:
                raise ValueError("dirty_hash comparison needs dirty_vpns")
            vpns = sorted(dirty_vpns)

        checker_hash = Xxh3_64()
        checkpoint_hash = Xxh3_64()
        bytes_hashed = 0
        mismatched: List[int] = []
        for vpn in vpns:
            left = self._page_or_none(checker, vpn)
            right = self._page_or_none(checkpoint, vpn)
            if left is None or right is None:
                if left is not right:
                    mismatched.append(vpn)
                continue
            # Tag with the vpn so swapped page contents cannot cancel out.
            tag = vpn.to_bytes(8, "little")
            checker_hash.update(tag)
            checker_hash.update(left)
            checkpoint_hash.update(tag)
            checkpoint_hash.update(right)
            bytes_hashed += 2 * len(left)
            if left != right:
                mismatched.append(vpn)

        if mismatched:
            return ComparisonResult(False, "memory",
                                    mismatched_vpns=mismatched,
                                    bytes_hashed=bytes_hashed,
                                    pages_compared=len(vpns))
        if checker_hash.digest() != checkpoint_hash.digest():
            # Unreachable unless the hash itself is broken; kept for rigor.
            return ComparisonResult(False, "hash", bytes_hashed=bytes_hashed,
                                    pages_compared=len(vpns))
        return ComparisonResult(True, bytes_hashed=bytes_hashed,
                                pages_compared=len(vpns))

    @staticmethod
    def _page_or_none(proc: Process, vpn: int) -> Optional[bytes]:
        if vpn in proc.mem.pages:
            return proc.mem.page_bytes(vpn)
        return None

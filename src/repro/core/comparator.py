"""Program-state comparison (paper §3.3, §4.4).

At the end of each segment the checker's state must equal the checkpoint
taken from the main at the same execution point.  State = all registers +
the PC + all modified memory.  To avoid copying page contents between
processes, Parallaft injects hasher code into both processes and compares
XXH3-64 digests of the modified pages only; we model the same structure (and
its cost) and also provide the full-memory strawman for the ablation.

The comparator is itself part of the trusted computing base: a hash-path
fault (or an engineered collision) makes two differing pages look equal and
the corruption escapes silently.  ``redundant=True`` (config knob
``redundant_compare``) runs a second, independent hash path over the same
pages; a verdict disagreement between the two paths implicates the
comparator — not the application — and is reported with reason
``"integrity"`` so the runtime fail-stops instead of "recovering" on
untrusted evidence.  The module also hosts the checkpoint integrity
helpers: :func:`state_digest` (whole-process digest for retained recovery
checkpoints) and :func:`audit_clean_pages` (spot check that the dirty
tracker did not under-report).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.config import ComparisonStrategy
from repro.hashing import Xxh3_64
from repro.kernel.process import Process


class ComparisonResult:
    __slots__ = ("match", "reason", "mismatched_vpns", "register_mismatch",
                 "pc_mismatch", "bytes_hashed", "pages_compared")

    def __init__(self, match: bool, reason: str = "",
                 mismatched_vpns: Optional[List[int]] = None,
                 register_mismatch: bool = False,
                 pc_mismatch: bool = False,
                 bytes_hashed: int = 0,
                 pages_compared: int = 0):
        self.match = match
        self.reason = reason
        self.mismatched_vpns = mismatched_vpns or []
        self.register_mismatch = register_mismatch
        self.pc_mismatch = pc_mismatch
        self.bytes_hashed = bytes_hashed
        self.pages_compared = pages_compared

    def __repr__(self) -> str:
        status = "match" if self.match else f"MISMATCH({self.reason})"
        return f"ComparisonResult({status}, pages={self.pages_compared})"

    def describe(self) -> str:
        """Human-readable divergence summary for error reports."""
        if self.match:
            return "match"
        if self.reason == "pc":
            return "program counters diverge"
        if self.reason == "registers":
            return "register files diverge"
        if self.reason == "memory":
            shown = ", ".join(hex(v) for v in self.mismatched_vpns[:4])
            extra = len(self.mismatched_vpns) - 4
            if extra > 0:
                shown += f", +{extra} more"
            return (f"{len(self.mismatched_vpns)} dirty page(s) diverge "
                    f"(vpn {shown})")
        if self.reason == "integrity":
            return ("comparator hash paths disagree — digest logic is "
                    "untrusted, verdict discarded")
        return self.reason


class VoteResult:
    """Outcome of a TMR majority vote over {main checkpoint, replicas}.

    ``quorum`` is the size of the largest agreeing set (3 = unanimous,
    2 = majority with one loser, 1 = all disagree → fail-stop).  When the
    *main* is outvoted, ``winner_index`` names the replica whose state is
    the majority (forward recovery adopts it); ``loser_replicas`` lists
    outvoted replica indices.  ``results`` holds the per-replica
    comparisons against the checkpoint and ``cross_result`` the
    replica-vs-replica tie-break compare (run only when every replica
    disagreed with the main).
    """

    __slots__ = ("quorum", "main_outvoted", "winner_index",
                 "loser_replicas", "results", "cross_result")

    def __init__(self, quorum: int, main_outvoted: bool = False,
                 winner_index: Optional[int] = None,
                 loser_replicas: Optional[List[int]] = None,
                 results: Optional[List[ComparisonResult]] = None,
                 cross_result: Optional[ComparisonResult] = None):
        self.quorum = quorum
        self.main_outvoted = main_outvoted
        self.winner_index = winner_index
        self.loser_replicas = loser_replicas or []
        self.results = results or []
        self.cross_result = cross_result

    @property
    def unanimous(self) -> bool:
        return not self.loser_replicas and not self.main_outvoted \
            and self.quorum >= 2

    @property
    def bytes_hashed(self) -> int:
        total = sum(r.bytes_hashed for r in self.results)
        if self.cross_result is not None:
            total += self.cross_result.bytes_hashed
        return total

    def __repr__(self) -> str:
        return (f"VoteResult(quorum={self.quorum}, "
                f"main_outvoted={self.main_outvoted}, "
                f"losers={self.loser_replicas})")


class StateComparator:
    def __init__(self, strategy: ComparisonStrategy, page_size: int,
                 redundant: bool = False):
        self.strategy = strategy
        self.page_size = page_size
        #: Second, independent hash path (``redundant_compare``): a verdict
        #: disagreement between paths is a comparator fault, not an
        #: application divergence.
        self.redundant = redundant
        #: Fault-injection hook (``repro.faults.infra`` digest-corrupt
        #: model): when armed, the *primary* digest path of the next
        #: ``compare`` call reports "equal" no matter what actually
        #: diverged — the comparator reduces (pc, registers, pages) to
        #: digests, so a faulted digest path forges the whole verdict,
        #: whichever stage the divergence lives in.  Consumed
        #: (read-and-cleared) at compare entry so an early-stage return
        #: cannot leak it into a later segment's comparison.
        self.fault_next_digest_collision = False
        #: Optional ``repro.metrics`` registry; when present, every
        #: comparison feeds the per-compare work histograms.
        self.metrics = None

    def compare(self, checker: Process, checkpoint: Process,
                dirty_vpns: Optional[Set[int]] = None) -> ComparisonResult:
        result = self._compare(checker, checkpoint, dirty_vpns)
        if self.metrics is not None:
            self.metrics.histogram(
                "comparator.bytes_hashed",
                bounds=(0.0, 16384.0, 65536.0, 262144.0, 1048576.0,
                        4194304.0, 16777216.0)).observe(result.bytes_hashed)
            self.metrics.histogram(
                "comparator.pages_compared",
                bounds=(0.0, 1.0, 4.0, 16.0, 64.0, 256.0,
                        1024.0, 4096.0)).observe(result.pages_compared)
            self.metrics.counter("comparator.compares").inc()
            if not result.match:
                self.metrics.counter("comparator.mismatches").inc()
        return result

    def vote(self, replicas: List[Process], checkpoint: Process,
             dirty_vpns: Optional[Set[int]] = None,
             results: Optional[List[ComparisonResult]] = None) -> VoteResult:
        """TMR majority vote (Elzar, PAPERS.md) at a segment boundary.

        The voters are the main's end checkpoint plus every replica;
        each replica is compared pairwise against the checkpoint (or the
        caller passes precomputed ``results`` — the MEEK split path
        combines an early and a late stage per replica).  Majority wins:

        * every replica matches the checkpoint → unanimous;
        * some replicas match → the mismatching ones are outvoted
          (quorum = 1 + matching replicas);
        * *no* replica matches and the replicas agree *with each other*
          → the main itself is outvoted (quorum 2) and ``winner_index``
          names the replica whose state forward recovery adopts;
        * all three states differ → quorum 1, no majority exists: the
          caller must fail-stop (adopting any state would be a guess).
        """
        if results is None:
            results = [self.compare(r, checkpoint, dirty_vpns)
                       for r in replicas]
        matching = [i for i, r in enumerate(results) if r.match]
        losers = [i for i, r in enumerate(results) if not r.match]
        if matching:
            return VoteResult(quorum=1 + len(matching),
                              loser_replicas=losers, results=results)
        if len(replicas) < 2:
            # Degraded vote (a replica was already outvoted mid-replay):
            # two states, two opinions — no majority possible.
            return VoteResult(quorum=1, loser_replicas=losers,
                              results=results)
        cross = self.compare(replicas[0], replicas[1], dirty_vpns)
        if cross.match:
            return VoteResult(quorum=2, main_outvoted=True, winner_index=0,
                              results=results, cross_result=cross)
        return VoteResult(quorum=1, loser_replicas=losers, results=results,
                          cross_result=cross)

    def _compare(self, checker: Process, checkpoint: Process,
                 dirty_vpns: Optional[Set[int]] = None) -> ComparisonResult:
        """Compare checker state against the end-of-segment checkpoint.

        ``dirty_vpns`` is the union of pages modified by the main during the
        segment and by the checker during its replay; pages outside it share
        frames with the segment-start state on both sides and are equal by
        construction (tested by ``test_dirty_union_equals_full_compare``).
        """
        collision = self.fault_next_digest_collision
        self.fault_next_digest_collision = False
        if checker.cpu.pc != checkpoint.cpu.pc:
            result = ComparisonResult(False, "pc", pc_mismatch=True)
            return self._collide(result) if collision else result
        if checker.cpu.regs.snapshot() != checkpoint.cpu.regs.snapshot():
            result = ComparisonResult(False, "registers",
                                      register_mismatch=True)
            return self._collide(result) if collision else result

        if self.strategy == ComparisonStrategy.FULL_MEMORY:
            vpns = sorted(set(checker.mem.pages) | set(checkpoint.mem.pages))
        else:
            if dirty_vpns is None:
                raise ValueError("dirty_hash comparison needs dirty_vpns")
            vpns = sorted(dirty_vpns)

        checker_hash = Xxh3_64()
        checkpoint_hash = Xxh3_64()
        bytes_hashed = 0
        mismatched: List[int] = []
        for vpn in vpns:
            left = self._page_or_none(checker, vpn)
            right = self._page_or_none(checkpoint, vpn)
            if left is None or right is None:
                if left is not right:
                    mismatched.append(vpn)
                continue
            # Tag with the vpn so swapped page contents cannot cancel out.
            tag = vpn.to_bytes(8, "little")
            checker_hash.update(tag)
            checker_hash.update(left)
            checkpoint_hash.update(tag)
            checkpoint_hash.update(right)
            bytes_hashed += 2 * len(left)
            if left != right:
                mismatched.append(vpn)

        if self.redundant:
            # Second independent pass over the same pages (cost doubles).
            bytes_hashed *= 2

        if mismatched:
            result = ComparisonResult(False, "memory",
                                      mismatched_vpns=mismatched,
                                      bytes_hashed=bytes_hashed,
                                      pages_compared=len(vpns))
            return self._collide(result) if collision else result
        if checker_hash.digest() != checkpoint_hash.digest():
            # Unreachable unless the hash itself is broken; kept for rigor.
            return ComparisonResult(False, "hash", bytes_hashed=bytes_hashed,
                                    pages_compared=len(vpns))
        return ComparisonResult(True, bytes_hashed=bytes_hashed,
                                pages_compared=len(vpns))

    def _collide(self, truth: ComparisonResult) -> ComparisonResult:
        """Apply an armed digest-path fault to a true-mismatch verdict.

        Unhardened, the faulted primary path reports "equal" and the
        divergence escapes silently — the SDC channel the infra campaign
        measures.  With the redundant path on, the second (unfaulted)
        path still sees the divergence: two paths, two verdicts — the
        comparator itself is implicated and the verdict is discarded.
        """
        if self.redundant:
            return ComparisonResult(False, "integrity",
                                    mismatched_vpns=truth.mismatched_vpns,
                                    register_mismatch=truth.register_mismatch,
                                    pc_mismatch=truth.pc_mismatch,
                                    bytes_hashed=truth.bytes_hashed,
                                    pages_compared=truth.pages_compared)
        return ComparisonResult(True, bytes_hashed=truth.bytes_hashed,
                                pages_compared=truth.pages_compared)

    @staticmethod
    def _page_or_none(proc: Process, vpn: int) -> Optional[bytes]:
        if vpn in proc.mem.pages:
            return proc.mem.page_bytes(vpn)
        return None


def state_digest(proc: Process) -> Tuple[int, int]:
    """Whole-process integrity digest: PC + register file + every mapped
    page, vpn-tagged.  Returns ``(digest, bytes_digested)`` so the caller
    can charge the hashing cost.

    Taken over a retained recovery checkpoint at fork time
    (``checkpoint_digests``) and recomputed before the checkpoint is ever
    trusted on the error path: a mismatch means bits rotted while the
    checkpoint sat paused, and promoting it would "recover" into a corrupt
    timeline.
    """
    hasher = Xxh3_64()
    hasher.update(proc.cpu.pc.to_bytes(8, "little"))
    regs = repr(proc.cpu.regs.snapshot()).encode()
    hasher.update(regs)
    digested = 8 + len(regs)
    for vpn in sorted(proc.mem.pages):
        data = proc.mem.page_bytes(vpn)
        hasher.update(vpn.to_bytes(8, "little"))
        hasher.update(data)
        digested += len(data)
    return hasher.digest(), digested


def audit_clean_pages(checker: Process, checkpoint: Process,
                      trusted_dirty: Set[int],
                      limit: int) -> Tuple[List[int], List[int], int]:
    """Cross-check supposedly-clean pages against the end checkpoint.

    The dirty-page union is itself produced by the (fallible) tracker; a
    dropped vpn makes the comparator skip a truly-modified page.  This
    audit looks at pages *outside* the trusted union whose frames diverge
    between checker and checkpoint — in a fault-free run every
    frame-divergent page was written on some side and therefore *is* in
    the union, so any frame-divergent page missing from it is exactly the
    tracker-under-reporting signature.  Up to ``limit`` suspicious pages
    are byte-compared (frame divergence alone is not proof: an untouched
    page can sit in re-COWed but byte-equal frames after a fork chain).

    Returns ``(audited_vpns, mismatched_vpns, bytes_compared)``.
    """
    suspicious: List[int] = []
    for vpn in sorted(set(checker.mem.pages) | set(checkpoint.mem.pages)):
        if vpn in trusted_dirty:
            continue
        if vpn not in checker.mem.pages or vpn not in checkpoint.mem.pages:
            suspicious.append(vpn)
            continue
        if checker.mem.frame_id(vpn) != checkpoint.mem.frame_id(vpn):
            suspicious.append(vpn)
    audited = suspicious[:limit] if limit else []
    mismatched: List[int] = []
    bytes_compared = 0
    for vpn in audited:
        left = StateComparator._page_or_none(checker, vpn)
        right = StateComparator._page_or_none(checkpoint, vpn)
        if left is None or right is None:
            if left is not right:
                mismatched.append(vpn)
            continue
        bytes_compared += 2 * len(left)
        if left != right:
            mismatched.append(vpn)
    return audited, mismatched, bytes_compared

"""Execution-point record and replay (paper §4.2).

An execution point is (PC, number of near branches retired since segment
start): the PC alone is ambiguous inside loops, but PC + branch count is
unique, because control flow must pass a branch to revisit a PC (paper
footnote 5).

Replay (paper §4.2.2, figure 3) arms the checker's branch counter to
overflow a *skid buffer* short of the target, then sets a hardware
breakpoint at the target PC and continues, comparing the branch count at
every breakpoint hit until it equals the target.  Stopping short absorbs
counter skid; the breakpoint loop walks the remaining iterations precisely.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.core.config import ExecPointCounter


class ExecPoint:
    """A precise point in an execution, relative to its segment start."""

    __slots__ = ("pc", "branches", "instructions")

    def __init__(self, pc: int, branches: int, instructions: int = 0):
        self.pc = pc
        self.branches = branches          # near branches since segment start
        self.instructions = instructions  # (overcounted) instructions, ditto

    def __repr__(self) -> str:
        return f"ExecPoint(pc={self.pc:#x}, branches={self.branches})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, ExecPoint):
            return NotImplemented
        return self.pc == other.pc and self.branches == other.branches

    def __hash__(self):
        return hash((self.pc, self.branches))


class ReplayStopKind(enum.Enum):
    SIGNAL = "signal"        # deliver an external signal here (paper §4.3.3)
    SEGMENT_END = "segment_end"


class ReplayStop:
    __slots__ = ("point", "kind", "signo")

    def __init__(self, point: ExecPoint, kind: ReplayStopKind,
                 signo: int = 0):
        self.point = point
        self.kind = kind
        self.signo = signo


class ReplayPhase(enum.Enum):
    IDLE = "idle"
    WAIT_OVERFLOW = "wait_overflow"
    WAIT_BREAKPOINT = "wait_breakpoint"
    DONE = "done"


class ReplayOutcome(enum.Enum):
    RUNNING = "running"
    REACHED = "reached"
    OVERRUN = "overrun"      # branch count exceeded target: divergence


class ExecPointReplayer:
    """Drives one checker through an ordered list of replay stops."""

    def __init__(self, proc, stops: List[ReplayStop],
                 skid_buffer: int,
                 counter: ExecPointCounter = ExecPointCounter.BRANCHES,
                 branch_base: Optional[int] = None,
                 instr_base: Optional[int] = None):
        self.proc = proc
        self.stops = sorted(stops, key=lambda s: (s.point.branches,
                                                  s.kind.value))
        self.skid_buffer = skid_buffer
        self.counter = counter
        # Counter bases: the checker was forked with the main's counter
        # values at segment start, so relative points are absolute minus
        # these bases.  Passed explicitly when the checker already ran
        # before the end point became known (the RAFT model).
        self.branch_base = (proc.cpu.branches_retired if branch_base is None
                            else branch_base)
        self.instr_base = (proc.cpu.read_counter("instructions")
                           if instr_base is None else instr_base)
        self.index = 0
        self.phase = ReplayPhase.IDLE
        #: perf/breakpoint programming operations performed (cost driver)
        self.setup_ops = 0

    # -- helpers ---------------------------------------------------------

    def current_stop(self) -> Optional[ReplayStop]:
        if self.index < len(self.stops):
            return self.stops[self.index]
        return None

    def _count_now(self) -> int:
        if self.counter == ExecPointCounter.BRANCHES:
            return self.proc.cpu.branches_retired - self.branch_base
        return self.proc.cpu.read_counter("instructions") - self.instr_base

    def _target_of(self, stop: ReplayStop) -> int:
        if self.counter == ExecPointCounter.BRANCHES:
            return stop.point.branches
        return stop.point.instructions

    # -- arming -------------------------------------------------------------

    def arm_next(self) -> None:
        """Arm the counter/breakpoint for the next stop (or finish)."""
        stop = self.current_stop()
        if stop is None:
            self.phase = ReplayPhase.DONE
            return
        target = self._target_of(stop)
        now = self._count_now()
        if now >= max(0, target - self.skid_buffer):
            # Close enough already: go straight to breakpointing.
            self._set_breakpoint(stop)
        else:
            self.setup_ops += 1
            if self.counter == ExecPointCounter.BRANCHES:
                self.proc.cpu.arm_branch_overflow(
                    self.branch_base + target - self.skid_buffer)
            else:
                self.proc.cpu.arm_instr_overflow(
                    self.instr_base + target - self.skid_buffer)
            self.phase = ReplayPhase.WAIT_OVERFLOW

    def _set_breakpoint(self, stop: ReplayStop) -> None:
        self.setup_ops += 1
        self.proc.cpu.breakpoints.add(stop.point.pc)
        self.phase = ReplayPhase.WAIT_BREAKPOINT

    # -- stop handling -------------------------------------------------------------

    def on_overflow(self) -> ReplayOutcome:
        """Counter overflow delivered (with skid): set the breakpoint."""
        stop = self.current_stop()
        if stop is None or self.phase != ReplayPhase.WAIT_OVERFLOW:
            return ReplayOutcome.RUNNING
        count = self._count_now()
        target = self._target_of(stop)
        if count > target:
            return ReplayOutcome.OVERRUN  # skid blew through the buffer
        if count == target and self.proc.cpu.pc == stop.point.pc:
            return self._reached(stop)
        self._set_breakpoint(stop)
        return ReplayOutcome.RUNNING

    def on_breakpoint(self) -> ReplayOutcome:
        """Breakpoint at the target PC: stop only at the right count
        (figure 3's "breakpointing on the same PC many times")."""
        stop = self.current_stop()
        if stop is None or self.phase != ReplayPhase.WAIT_BREAKPOINT:
            # Stray breakpoint (not ours): skip past it.
            self.proc.cpu.bp_skip_pc = self.proc.cpu.pc
            return ReplayOutcome.RUNNING
        count = self._count_now()
        target = self._target_of(stop)
        if count < target:
            self.proc.cpu.bp_skip_pc = self.proc.cpu.pc
            return ReplayOutcome.RUNNING
        if count > target:
            return ReplayOutcome.OVERRUN
        return self._reached(stop)

    def _reached(self, stop: ReplayStop) -> ReplayOutcome:
        self.proc.cpu.breakpoints.discard(stop.point.pc)
        self.proc.cpu.disarm_branch_overflow()
        if self.counter == ExecPointCounter.INSTRUCTIONS:
            self.proc.cpu.disarm_instr_overflow()
        self.index += 1
        self.phase = ReplayPhase.IDLE
        return ReplayOutcome.REACHED

"""The Parallaft runtime: coordinator + tracer (paper §3, figure 2).

``Parallaft`` is the user-facing entry point: give it a program (and
optionally a platform/config), call :meth:`run`, get :class:`RunStats`.

Internally it is the *coordinator* of figure 2: a ptrace-style tracer that
slices the main execution into segments, forks checkpoint/checker processes
at boundaries, records syscalls/signals/nondeterministic instructions into
per-segment R/R logs, replays checkers to recorded execution points on
little cores, compares program state at segment ends, and schedules/paces
checkers for energy efficiency.

The same class runs the paper's RAFT model (§5.1) via
``ParallaftConfig.raft()``: a single segment whose checker runs concurrently
on a big core with no state comparison.
"""

from __future__ import annotations

import dataclasses
import math

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import abi
from repro.common.errors import (
    FramePoolExhausted,
    ReproError,
    SimulationError,
)
from repro.core import syscall_model
from repro.core.checker_sched import CheckerScheduler
from repro.core.comparator import (
    StateComparator,
    audit_clean_pages,
    state_digest,
)
from repro.core.config import (
    DirtyPageBackend,
    ExecPointCounter,
    ParallaftConfig,
    RuntimeMode,
)
from repro.core.dirty_tracker import DirtyPageTracker
from repro.core.pressure import PressureController
from repro.core.exec_point import (
    ExecPoint,
    ExecPointReplayer,
    ReplayOutcome,
    ReplayStop,
    ReplayStopKind,
)
from repro.core.rr_log import (
    NondetRecord,
    SignalRecord,
    SyscallRecord,
    verify_record,
)
from repro.core.segment import Segment, SegmentStatus
from repro.core.stats import DetectedError, RunStats
from repro.cpu.exceptions import Stop, StopReason
from repro.isa import instructions as I
from repro.isa.program import Program
from repro.kernel import Kernel, SyscallAction, Tracer
from repro.kernel.process import Process, ProcessState
from repro.mem.frames import budget_from_env
from repro.metrics import MetricRegistry, PhaseProfiler
from repro.metrics import phases as mph
from repro.recovery.manager import RecoveryManager
from repro.sim.executor import Executor, core_label
from repro.sim.platform import PlatformConfig, apple_m2
from repro.trace import TraceBuffer
from repro.trace import events as tev


class Parallaft(Tracer):
    """Protect one program run with heterogeneous parallel error detection."""

    def __init__(self, program: Program,
                 config: Optional[ParallaftConfig] = None,
                 platform: Optional[PlatformConfig] = None,
                 kernel: Optional[Kernel] = None,
                 executor: Optional[Executor] = None,
                 files: Optional[Dict[str, bytes]] = None,
                 quantum: int = 2000,
                 seed: int = 0):
        self.program = program
        self.platform = platform or apple_m2()
        self.config = config or ParallaftConfig()
        if self.config.mem_budget_bytes is None:
            # REPRO_MEM_BUDGET is resolved here, not at config
            # construction, so a bare ParallaftConfig stays
            # environment-independent (retains_recovery_checkpoint and
            # friends only see an explicit budget).
            env_budget = budget_from_env()
            if env_budget is not None:
                self.config = dataclasses.replace(
                    self.config, mem_budget_bytes=env_budget)
        self.config.validate()
        #: The detection-mode policy object (repro.modes): replica count,
        #: submit timing, boundary compare/vote and error absorption all
        #: dispatch through it instead of string-comparing mode names.
        self.mode = self.config.detection_mode()
        self.kernel = kernel or Kernel(page_size=self.platform.page_size,
                                       seed=seed)
        self.kernel.counters.instr_overcount_max = \
            self.platform.instr_overcount_max
        self.kernel.counters.skid_max = self.platform.skid_max
        self.kernel.counters.skid_probability = self.platform.skid_probability
        self.executor = executor or Executor(self.kernel, self.platform,
                                             quantum=quantum)
        #: Structured event trace; shared with the kernel and executor so
        #: every layer emits into one timeline.
        self.trace = TraceBuffer(capacity=self.config.trace_capacity,
                                 enabled=self.config.enable_trace,
                                 clock=lambda: self.executor.current_time)
        self.executor.trace = self.trace
        self.kernel.trace = self.trace
        for path, data in (files or {}).items():
            self.kernel.vfs.register(path, data)

        self.stats = RunStats()
        #: Metric registry + phase-attribution profiler (repro.metrics).
        #: The profiler is shared with the executor (cycle charges) and
        #: the kernel (span closure on every process-exit path).
        self.metrics = MetricRegistry()
        self.profiler = PhaseProfiler(
            clock=lambda: self.executor.current_time,
            role_of=lambda proc: self.roles.get(proc.pid),
            segment_of=self._segment_index_of,
            enabled=self.config.enable_metrics)
        self.executor.profiler = self.profiler
        self.kernel.profiler = self.profiler
        self.stats.bind_registry(self.metrics)
        backend = self.config.dirty_page_backend
        if backend is None:
            backend = (DirtyPageBackend.SOFT_DIRTY
                       if self.platform.arch == "x86_64"
                       else DirtyPageBackend.MAP_COUNT)
        self.dirty_tracker = DirtyPageTracker(backend,
                                              self.platform.page_size)
        self.comparator = StateComparator(
            self.config.comparison, self.platform.page_size,
            redundant=self.config.redundant_compare)
        self.comparator.metrics = (self.metrics
                                   if self.config.enable_metrics else None)
        self.sched = CheckerScheduler(self.executor, self.config, self.stats)
        self.slicing_unit = (self.config.slicing_unit
                             or self.platform.slicing_unit)
        self.recovery: Optional[RecoveryManager] = (
            RecoveryManager(self) if self.config.enable_recovery else None)
        if self.config.mem_budget_bytes is not None:
            self.kernel.pool.set_budget(self.config.mem_budget_bytes)
        #: Memory-pressure degradation ladder; present iff the pool has a
        #: finite budget (from config or a caller-provided kernel).
        self.pressure: Optional[PressureController] = (
            PressureController(self)
            if self.kernel.pool.budget_bytes is not None else None)

        self.main: Optional[Process] = None
        self.segments: List[Segment] = []
        self.current: Optional[Segment] = None
        self.roles: Dict[int, str] = {}
        self.segment_of_checker: Dict[int, Segment] = {}
        self.patch_table: Dict[int, I.Instr] = {}
        self._pending_syscall: Optional[SyscallRecord] = None
        self._pending_mmap_split = False
        #: pid -> original argument registers to restore after a rewritten
        #: (MAP_FIXED) replay call completes, so checker registers stay
        #: bit-identical to the main's.
        self._checker_restore_regs: Dict[int, Tuple[int, ...]] = {}
        self._stalled_checkers: Set[int] = set()
        self._main_stalled_on_cap = False
        self._main_stalled_for_containment = False
        self._main_stalled_on_pressure = False
        self._terminated = False
        #: Latched at the first INTEGRITY_FAIL emission: saved state (or
        #: the comparator) proved untrusted, so no rollback may ever run
        #: after this point — promoting evidence the run just proved
        #: rotten is how an infra fault becomes a corrupt timeline.
        self._integrity_failed = False
        #: Per-quantum hooks (fault injection attaches here).
        self.quantum_hooks: List[Callable[[Process, str], None]] = []
        #: Pre-comparison hooks, called with the segment about to be
        #: compared (the infra campaign's digest-fault model arms the
        #: comparator here).
        self.compare_hooks: List[Callable[[Segment], None]] = []
        if self.config.metrics_sample_interval is not None \
                and self.config.enable_metrics:
            self.enable_metrics_sampling(self.config.metrics_sample_interval)

    def _segment_index_of(self, proc: Process) -> Optional[int]:
        """The segment a process's work belongs to, for the profiler's
        per-segment ledger: a checker charges its own segment, the main
        charges the segment it is currently recording."""
        role = self.roles.get(proc.pid)
        if role == "checker":
            segment = self.segment_of_checker.get(proc.pid)
            return segment.index if segment is not None else None
        if role == "main" and self.current is not None:
            return self.current.index
        return None

    # ------------------------------------------------------------------ setup

    def _setup(self) -> None:
        self.main = self.kernel.spawn(self.program)
        self.kernel.attach_tracer(self.main, self)
        self.roles[self.main.pid] = "main"
        if self.platform.arch == "x86_64":
            # rdtsc/cpuid disabled in hardware: they fault and we emulate
            # (paper §4.3.4).  Our mrs traps the same way.
            self.main.cpu.trap_nondet = True
        else:
            # AArch64: binary-patch nondeterministic reads to brk
            # (paper §4.3.4 and footnote 9).
            self._patch_nondet_instructions(self.main)
        core = self.executor.big_cores[0]
        self.executor.assign(self.main, core)
        self._start_segment()

    def _patch_nondet_instructions(self, proc: Process) -> None:
        for address, instr in list(proc.mem.scan_code()):
            if instr.op in I.NONDET_OPCODES:
                original = proc.mem.patch_code(address, I.make_brk())
                self.patch_table[address] = original

    # -------------------------------------------------------------- public API

    def run(self) -> RunStats:
        """Run the program under protection; returns the collected stats."""
        try:
            self._setup()
        except FramePoolExhausted as exc:
            # The program image itself does not fit the frame-pool budget:
            # the run is over before it began — an OOM exit, not a crash.
            self.kernel.stats["oom_kills"] += 1
            if self.trace.enabled:
                self.trace.emit(tev.PRESSURE_EXHAUSTED, stage=3,
                                needed=exc.needed, resident=exc.resident,
                                budget=exc.budget)
                self.trace.emit(tev.OOM, needed=exc.needed,
                                resident=exc.resident, budget=exc.budget)
            self.stats.oom_killed = True
            self.stats.oom_kills = self.kernel.stats["oom_kills"]
            self.stats.exit_code = 128 + abi.SIGKILL
            self.stats.peak_resident_bytes = float(
                self.kernel.pool.peak_resident_bytes)
            self._finalize_metrics()
            return self.stats
        self.executor.run()
        self._finalize_stats()
        return self.stats

    # ----------------------------------------------------------------- tracing

    def _emit(self, kind: str, proc: Optional[Process] = None,
              segment: Optional[int] = None, **payload) -> None:
        """Emit one trace event, resolving pid/role/core from ``proc``."""
        if not self.trace.enabled:
            return
        pid = role = core = None
        if proc is not None:
            pid = proc.pid
            role = self.roles.get(proc.pid)
            if proc.core is not None:
                core = core_label(proc.core)
        self.trace.emit(kind, pid=pid, role=role, core=core,
                        segment=segment, **payload)

    # --------------------------------------------------------- segment machinery

    def _instr_reading(self, proc: Process) -> int:
        return proc.cpu.read_counter("instructions")

    def _live_segments(self) -> int:
        return sum(1 for s in self.segments if s.live)

    def _start_segment(self) -> None:
        main = self.main
        checker, fork_cost = self.kernel.fork(
            main, name=f"checker-{len(self.segments)}", paused=True)
        self.executor.charge(main, fork_cost, phase=mph.CHECKPOINT_FORK)
        self.roles[checker.pid] = "checker"
        segment = Segment(
            index=len(self.segments),
            checker=checker,
            start_branches=main.cpu.branches_retired,
            start_instructions=self._instr_reading(main),
            start_cycles=main.user_cycles,
            start_time=self.executor.current_time,
        )
        self.segment_of_checker[checker.pid] = segment
        self.segments.append(segment)
        self.current = segment
        segment.log.integrity = self.config.log_checksums
        self.stats.checkpoint_count += 1
        self._emit(tev.SEGMENT_START, proc=main, segment=segment.index,
                   checker_pid=checker.pid)
        # Output the segment produces is only committed once it verifies;
        # a rollback truncates the consoles back to these marks.
        segment.console_mark = self.kernel.console.mark()
        segment.stderr_mark = self.kernel.stderr_console.mark()
        if self.config.retains_recovery_checkpoint:
            # Error recovery (Table 2 future work): retain a pristine copy
            # of the segment-start state to re-fork checkers from — and,
            # with enable_recovery, to roll the main back to.
            recovery, cost = self.kernel.fork(
                main, name=f"recovery-{segment.index}", paused=True)
            self.executor.charge(main, cost, phase=mph.CHECKPOINT_FORK)
            self.roles[recovery.pid] = "checkpoint"
            segment.recovery_checkpoint = recovery
            if self.config.checkpoint_digests:
                # Digest the checkpoint while it is known-good (it *is*
                # the main, fork-instant); re-verified before any error
                # path trusts it.  Hashing is on the main's critical path,
                # like the fork itself.
                digest, nbytes = state_digest(recovery)
                segment.checkpoint_digest = digest
                self.executor.charge(main,
                                     self.kernel.costs.hash_cycles(nbytes),
                                     phase=mph.HASHING)
        if self.config.compare_state:
            pages = self.dirty_tracker.begin_segment(main)
            self.executor.charge(main,
                                 self.kernel.costs.dirty_clear_cycles(pages),
                                 phase=mph.DIRTY_SCAN)
        # Program the branch counter for execution-point recording (§4.2.1).
        self.executor.charge(main, self.kernel.costs.perf_setup_cycles,
                             phase=mph.RUNTIME)
        for n in range(1, self.mode.replica_count):
            # Extra checker replicas (TMR): independent paused forks of
            # the same segment-start state, each a voter at the boundary.
            extra, extra_cost = self.kernel.fork(
                main, name=f"checker-{segment.index}r{n}", paused=True)
            self.executor.charge(main, extra_cost,
                                 phase=mph.CHECKPOINT_FORK)
            self.roles[extra.pid] = "checker"
            self.segment_of_checker[extra.pid] = segment
            segment.add_replica(extra)
        # RAFT submits here so its checker runs concurrently from the
        # very start, consuming the log as it is recorded.
        self.mode.on_segment_start(self, segment)

    def _finalize_segment(self, end_is_main_exit: bool = False) -> None:
        """Close the recording segment at the main's current stop point."""
        segment = self.current
        if segment is None:
            return
        main = self.main
        point = ExecPoint(
            main.cpu.pc,
            main.cpu.branches_retired - segment.start_branches,
            self._instr_reading(main) - segment.start_instructions,
        )
        segment.end_point = point
        segment.main_instructions = point.instructions
        if self.config.compare_state:
            segment.main_dirty_vpns = self.dirty_tracker.dirty_vpns(main)
            self.executor.charge(main, self.kernel.costs.dirty_scan_cycles(
                main.mem.mapped_pages), phase=mph.DIRTY_SCAN)
        if end_is_main_exit:
            # The final segment compares against the exited (unreaped) main.
            segment.end_checkpoint = main
            segment.end_is_main = True
        else:
            checkpoint, cost = self.kernel.fork(
                main, name=f"checkpoint-{segment.index + 1}", paused=True)
            self.executor.charge(main, cost, phase=mph.CHECKPOINT_FORK)
            self.roles[checkpoint.pid] = "checkpoint"
            segment.end_checkpoint = checkpoint
        segment.ready_time = self.executor.current_time
        segment.status = SegmentStatus.READY
        self._emit(tev.SEGMENT_READY, proc=main, segment=segment.index,
                   instructions=segment.main_instructions,
                   main_exit=end_is_main_exit)
        self.current = None
        self._release_segment(segment)
        if self.recovery is not None:
            # A re-executed region is fully re-recorded: watchdog off.
            self.recovery.note_boundary()

    def _release_segment(self, segment: Segment) -> None:
        """Arm every replica's replay to the recorded end point."""
        for replica in segment.replicas:
            checker = replica.process
            # Each replica consumes the shared stop list through its own
            # replayer (private copy: arming is stateful per replica).
            stops = list(segment.signal_stops)
            stops.append(ReplayStop(segment.end_point,
                                    ReplayStopKind.SEGMENT_END))
            replica.replayer = ExecPointReplayer(
                checker, stops, self.config.skid_buffer_branches,
                self.config.exec_point_counter,
                branch_base=segment.start_branches,
                instr_base=segment.start_instructions)
            # 1.1x instruction timeout (paper §4.2.2): kills checkers whose
            # control flow was corrupted into never reaching the end point.
            if self.config.exec_point_counter == ExecPointCounter.BRANCHES:
                timeout = (segment.start_instructions
                           + int(segment.main_instructions
                                 * self.config.checker_timeout_scale) + 64)
                checker.cpu.arm_instr_overflow(timeout)
            self._emit(tev.SEGMENT_RELEASE, proc=checker,
                       segment=segment.index)
            if self.config.log_checksums and len(segment.log):
                # Marker: this replay verifies N checksummed records;
                # failures surface as INTEGRITY_FAIL at the consuming site.
                self._emit(tev.INTEGRITY_CHECK, proc=checker,
                           segment=segment.index, check="log",
                           records=len(segment.log))
            replica.replayer.arm_next()
            # The checker may still be queued for a core: park the setup
            # cost until the scheduler places it.
            self.executor.charge_deferred(
                checker, self.kernel.costs.perf_setup_cycles
                + self.kernel.costs.breakpoint_setup_cycles,
                phase=mph.RUNTIME)
        # Non-concurrent modes submit to the checker scheduler here.
        self.mode.on_segment_release(self, segment)
        for replica in segment.replicas:
            if replica.process.state == ProcessState.WAITING \
                    and not replica.reached_end:
                self._wake_checker(replica.process)

    def _boundary(self) -> None:
        """A slicing boundary: finalize the recording segment, start the
        next one (figure 1(b) steps 1-2)."""
        self._finalize_segment()
        self._start_segment()
        self.stats.nr_slices += 1

    # ------------------------------------------------------------ record helpers

    def _charge_record_bytes(self, proc: Process, nbytes: int) -> None:
        if nbytes:
            self.stats.bytes_recorded += nbytes
            self.executor.charge(
                proc, nbytes * self.kernel.costs.record_per_byte_cycles,
                phase=mph.RUNTIME)

    def _wake_checker(self, checker: Process) -> None:
        if checker.state == ProcessState.WAITING:
            checker.state = ProcessState.RUNNING
            checker.ready_time = max(checker.ready_time,
                                     self.executor.current_time)
            self._stalled_checkers.discard(checker.pid)
            self.profiler.close_span(checker.pid)
            segment = self.segment_of_checker.get(checker.pid)
            self._emit(tev.CHECKER_WAKE, proc=checker,
                       segment=segment.index if segment else None)

    def _stall_checker(self, checker: Process) -> None:
        checker.state = ProcessState.WAITING
        self._stalled_checkers.add(checker.pid)
        self.profiler.open_span(checker.pid, mph.CHECKER_STALL)
        segment = self.segment_of_checker.get(checker.pid)
        self._emit(tev.CHECKER_STALL, proc=checker,
                   segment=segment.index if segment else None,
                   reason="record_starvation")

    def _record_appended(self, segment: Segment) -> None:
        for replica in segment.replicas:
            proc = replica.process
            if proc is not None and proc.pid in self._stalled_checkers:
                self._wake_checker(proc)

    def _drain_signal_records(self, checker: Process) -> None:
        """Inject record-stream signals the main raised against itself.

        The main's ``kill`` syscall queues a real signal; the checker's
        ``kill`` is emulated, so the kernel never queues the checker's copy
        — it is delivered here from the record instead, right after the
        replayed syscall completes.  Only *handled* signals are drained:
        unhandled fatal records correspond to genuine faults, which the
        checker reproduces (and matches) by faulting itself.
        """
        segment = self.segment_of_checker.get(checker.pid)
        if segment is None or not checker.alive:
            return
        replica = segment.replica_of(checker.pid)
        if replica is None:
            return
        while True:
            record = replica.cursor.peek()
            if (record is None or record.kind != "signal" or record.external
                    or record.signo not in checker.signal_handlers):
                return
            problem = self._log_record_problem(replica)
            if problem is not None:
                self._report_log_integrity(segment, problem)
                return
            replica.cursor.next()
            self.kernel.deliver_signal_now(checker, record.signo)

    # --------------------------------------------------------- integrity checks

    def _integrity_fail(self, check: str, segment: Optional[Segment],
                        detail: str) -> None:
        """An integrity check failed: latch the no-rollback flag and emit
        the INTEGRITY_FAIL trace event (the invariant checker asserts no
        ROLLBACK ever follows one of these)."""
        self._integrity_failed = True
        self.stats.integrity_failures += 1
        self._emit(tev.INTEGRITY_FAIL,
                   segment=segment.index if segment is not None else None,
                   check=check, detail=detail)

    def _checkpoint_integrity_ok(self, segment: Segment) -> bool:
        """Re-verify the retained recovery checkpoint's fork-time digest.

        Called before any error path trusts the checkpoint (retry forks
        from it; rollback promotes it to be the new main).  A mismatch
        means bits rotted while the checkpoint sat paused — promotion
        would "recover" into a corrupt timeline, so the caller must
        fail-stop instead.
        """
        if not self.config.checkpoint_digests:
            return True
        checkpoint = segment.recovery_checkpoint
        if checkpoint is None or segment.checkpoint_digest is None:
            return True
        digest, nbytes = state_digest(checkpoint)
        self.stats.integrity_checks += 1
        if self.main is not None and self.main.alive:
            self.executor.charge(self.main,
                                 self.kernel.costs.hash_cycles(nbytes),
                                 phase=mph.HASHING)
        ok = digest == segment.checkpoint_digest
        self._emit(tev.INTEGRITY_CHECK, segment=segment.index,
                   check="checkpoint", ok=ok)
        if not ok:
            self._integrity_fail(
                "checkpoint", segment,
                f"recovery checkpoint of segment {segment.index} failed "
                f"its fork-time integrity digest")
        return ok

    def _log_record_problem(self, replica) -> Optional[str]:
        """Verify the record the replica's cursor is about to consume;
        returns a violation description, or None when intact /
        verification is off."""
        if not self.config.log_checksums:
            return None
        record = replica.cursor.peek()
        if record is None:
            return None
        self.stats.integrity_checks += 1
        return verify_record(record, replica.cursor.position)

    def _report_log_integrity(self, segment: Segment, problem: str) -> None:
        """A record failed verification at replay: the log *copy* is
        suspect (checker-side transient), reported as ``log_integrity`` —
        retried from the retained checkpoint, never rolled back."""
        self._integrity_fail("log", segment, problem)
        self._report_error("log_integrity", segment, problem)

    # ------------------------------------------------------------- error handling

    def _report_error(self, kind: str, segment: Optional[Segment],
                      detail: str = "",
                      proc: Optional[Process] = None) -> None:
        if segment is not None and proc is not None:
            # A single replica failed mid-replay: give the detection mode
            # first refusal (TMR outvotes it while a majority remains).
            replica = segment.replica_of(proc.pid)
            if replica is not None and self.mode.absorb_replica_error(
                    self, segment, replica, kind, detail):
                return
        # A recovery-watchdog trip means recovery itself failed; an
        # infra_integrity error means saved state (or the comparator) is
        # untrusted.  Neither re-checking nor a rollback may absorb them.
        recoverable = kind not in ("recovery_watchdog", "infra_integrity")
        if (recoverable and segment is not None
                and self.config.retains_recovery_checkpoint
                and segment.recovery_checkpoint is not None
                and not self._checkpoint_integrity_ok(segment)):
            # Every recovery path below would trust this checkpoint (retry
            # forks from it, rollback promotes it); it just failed its
            # digest, so escalate to an integrity fail-stop instead.
            detail = (f"recovery checkpoint of segment {segment.index} "
                      f"failed integrity verification while handling "
                      f"{kind}: {detail}")
            kind = "infra_integrity"
            recoverable = False
        if (recoverable and segment is not None
                and (self.config.retry_failed_checkers
                     or self.config.enable_recovery)
                and segment.retries < self.config.max_checker_retries
                and segment.recovery_checkpoint is not None
                and segment.end_point is not None):
            # First line of defense — and, with recovery on, the diagnosis
            # step: re-check with a second checker forked from the retained
            # segment-start state.  A transient checker fault vanishes; a
            # main-side fault persists into the next _report_error call.
            # (Checkpoints retained only for the pressure controller do
            # not enable retries — the explicit knobs gate them.)
            self._retry_segment_check(segment, kind)
            return
        if (recoverable and not self._integrity_failed
                and self.recovery is not None and segment is not None
                and self.recovery.on_check_failed(segment, kind, detail)):
            # The main was implicated and rolled back to the last verified
            # checkpoint: the error is absorbed, not reported.
            return
        if (recoverable and segment is not None and segment.checkpoint_evicted
                and (self.config.retry_failed_checkers
                     or self.config.enable_recovery)):
            # Retry/rollback would have consumed the retained checkpoint,
            # but the pressure controller evicted it (stage 3).  Refusing
            # with a typed error reuses the fail-stop discipline: freed
            # state must never be promoted into a "recovered" timeline.
            detail = (f"recovery checkpoint of segment {segment.index} was "
                      f"evicted under memory pressure; refusing to absorb "
                      f"{kind}: {detail}")
            kind = "checkpoint_evicted"
        index = segment.index if segment is not None else -1
        self.stats.errors.append(DetectedError(
            kind, index, detail, self.executor.current_time))
        self._emit(tev.ERROR, segment=index if index >= 0 else None,
                   error=kind, detail=detail)
        if segment is not None:
            segment.status = SegmentStatus.FAILED
            self._emit(tev.SEGMENT_FAILED, segment=segment.index, error=kind)
            for replica in segment.live_replicas():
                self.kernel.exit_process(replica.process, 1)
            self.sched.on_checker_done(segment)
        # The FAILED segment left the live set without ever retiring, so
        # this is a wake point for a stalled main: both the cap stall and
        # the containment stall must be re-evaluated here, else a main
        # stalled behind the failed segment sleeps forever when
        # stop_on_error is off.
        self._maybe_wake_stalled_main()
        if self.config.stop_on_error \
                or kind in ("infra_integrity", "checkpoint_evicted"):
            # Graceful degradation: once integrity is gone the run cannot
            # vouch for anything it would produce next — fail-stop even
            # when the user asked to continue past application errors.
            self._terminate_application()

    def _retry_segment_check(self, segment: Segment, kind: str) -> None:
        """Re-run a failed segment check with a fresh checker forked from
        the retained segment-start state (error recovery, Table 2).

        If the original failure was a transient fault in the *checker*, the
        retry succeeds and the application continues unharmed; a repeat
        mismatch implicates the main copy and is reported for real.
        """
        segment.retries += 1
        self.stats.checker_retries += 1
        if self.config.enable_recovery:
            self.stats.recovery_retries += 1
        self._teardown_replicas(segment)
        self.sched.on_checker_done(segment)
        segment.checker = None
        self._respawn_checker(
            segment, f"checker-{segment.index}-retry{segment.retries}",
            cause=kind)

    def _teardown_replicas(self, segment: Segment,
                           exit_code: int = 1) -> None:
        """Detach, kill and reap every checker replica of ``segment``.

        Detaching (``segment_of_checker``) comes first so the exit hook
        does not re-enter the error path for checkers we are deliberately
        discarding.  The caller runs ``sched.on_checker_done`` (which
        releases the replicas' cores) and then clears ``segment.checker``.
        """
        for replica in segment.replicas:
            proc = replica.process
            if proc is None:
                continue
            self.segment_of_checker.pop(proc.pid, None)
            self._stalled_checkers.discard(proc.pid)
            if proc.alive:
                self.kernel.exit_process(proc, exit_code)
            self.kernel.reap(proc)

    def _discard_replica(self, segment: Segment, replica) -> None:
        """Remove one outvoted replica (TMR absorption): the segment
        lives on with the surviving voters."""
        proc = replica.process
        if proc is not None:
            self.segment_of_checker.pop(proc.pid, None)
            self._stalled_checkers.discard(proc.pid)
            # Count its work as checker time now — it will never retire.
            self.stats.checker_user_time += proc.user_time
            self.stats.checker_sys_time += proc.sys_time
            self.stats.checker_cycles_big += proc.cycles_big
            self.stats.checker_cycles_little += proc.cycles_little
            if proc.alive:
                self.kernel.exit_process(proc, 1)
            self.executor.unassign(proc)
            self.kernel.reap(proc)
        segment.replicas.remove(replica)

    def _respawn_checker(self, segment: Segment, name: str,
                         cause: str) -> None:
        """Fork a fresh checker for ``segment`` from its retained
        segment-start checkpoint and re-release it (shared by the retry
        path and the pressure controller's shed/re-queue path)."""
        source = segment.recovery_checkpoint
        segment.checker = None   # drop any stale replica state
        fresh, cost = self.kernel.fork(source, name=name, paused=True)
        # This work happens off the main's critical path; charge the new
        # checker once it lands on a core.
        self.roles[fresh.pid] = "checker"
        self.segment_of_checker[fresh.pid] = segment
        segment.checker = fresh   # fresh Replica with a fresh log cursor
        self.executor.charge_deferred(fresh, cost,
                                      phase=mph.CHECKPOINT_FORK)
        for n in range(1, self.mode.replica_count):
            extra, extra_cost = self.kernel.fork(
                source, name=f"{name}r{n}", paused=True)
            self.roles[extra.pid] = "checker"
            self.segment_of_checker[extra.pid] = segment
            segment.add_replica(extra)
            self.executor.charge_deferred(extra, extra_cost,
                                          phase=mph.CHECKPOINT_FORK)
        segment.status = SegmentStatus.READY
        self._emit(tev.CHECKER_RETRY, proc=fresh, segment=segment.index,
                   retry=segment.retries, cause=cause)
        self._release_segment(segment)

    def _terminate_application(self) -> None:
        """An error was detected: terminate the application (paper §4.4)."""
        if self._terminated:
            return
        self._terminated = True
        self._emit(tev.APP_TERMINATE)
        for proc in list(self.kernel.processes.values()):
            if proc.alive and self.roles.get(proc.pid) in ("main", "checker"):
                if proc is self.main and proc.exit_code is not None:
                    continue
                self.kernel.exit_process(proc, 128 + abi.SIGKILL)

    # --------------------------------------------------------------- Tracer hooks

    # .. syscalls ..

    def on_syscall_entry(self, proc: Process, sysno: int,
                         args: Sequence[int]) -> Optional[SyscallAction]:
        role = self.roles.get(proc.pid)
        if role == "main":
            return self._main_syscall_entry(proc, sysno, tuple(args))
        if role == "checker":
            return self._checker_syscall_entry(proc, sysno, tuple(args))
        return None

    def _main_syscall_entry(self, proc: Process, sysno: int,
                            args: Tuple[int, ...]) -> Optional[SyscallAction]:
        if sysno == abi.SYS_EXIT:
            # Finalize the last segment at the exit syscall's execution
            # point; the checker will stop exactly here via its breakpoint.
            self._finalize_segment(end_is_main_exit=True)
            return None
        if syscall_model.is_shared_mmap(sysno, args):
            raise ReproError(
                "shared memory mappings are outside Parallaft's supported "
                "scope (paper §4.3.2)")
        if syscall_model.is_file_backed_mmap(sysno, args):
            # Split segments around the call so it stays outside the
            # protection zone (paper §4.3.2): the checker forked *after*
            # the call inherits the mapping instead of replaying it.  This
            # applies in RAFT mode too — the paper's RAFT model takes two
            # extra checkpoints around file-backed mmaps (§5.1).
            self._finalize_segment()
            self._pending_mmap_split = True
            self.stats.mmap_splits += 1
            return None
        classification = syscall_model.classify(sysno)
        if (self.config.error_containment
                and classification == syscall_model.GLOBAL
                and self.current is not None
                and any(s.live for s in self.segments
                        if s.index < self.current.index)):
            # Error containment in the SoR (Table 2 future work): nothing
            # escapes until every earlier segment is verified.  The main
            # stalls here and re-issues the syscall once they retire.
            self._main_stalled_for_containment = True
            proc.state = ProcessState.WAITING
            self.profiler.open_span(proc.pid, mph.CONTAINMENT_STALL)
            if self.trace.enabled:
                waiting_on = [s.index for s in self.segments
                              if s.live and s.index < self.current.index]
                self._emit(tev.SYSCALL_HELD, proc=proc,
                           segment=self.current.index, sysno=sysno)
                self._emit(tev.MAIN_STALL, proc=proc,
                           segment=self.current.index,
                           reason=tev.STALL_CONTAINMENT,
                           waiting_on=waiting_on)
            return SyscallAction.emulate(0)
        record = SyscallRecord(sysno, args, classification,
                               replay_passthrough=(classification
                                                   == syscall_model.LOCAL))
        region = syscall_model.input_region(sysno, args)
        if region is not None:
            address, length = region
            try:
                record.input_data = proc.mem.read_bytes(address, length)
            except Exception:
                record.input_data = b""
            self._charge_record_bytes(proc, len(record.input_data))
        self._pending_syscall = record
        return None

    def on_syscall_exit(self, proc: Process, sysno: int,
                        args: Sequence[int], result: int) -> None:
        role = self.roles.get(proc.pid)
        if role == "checker":
            original = self._checker_restore_regs.pop(proc.pid, None)
            if original is not None:
                # Undo the MAP_FIXED argument rewrite so checker registers
                # stay bit-identical to the main's.
                for i, value in enumerate(original):
                    proc.cpu.regs.gprs[i + 1] = value
            self._drain_signal_records(proc)
            return
        if role != "main":
            return
        if self._pending_mmap_split:
            # The file-backed mmap completed: open the next segment, whose
            # start checkpoint duplicates the new mapping into the checker.
            self._pending_mmap_split = False
            if proc.alive:
                self._start_segment()
            return
        record = self._pending_syscall
        self._pending_syscall = None
        if record is None or self.current is None:
            return
        record.result = result
        region = syscall_model.output_region(sysno, record.args, result)
        if region is not None:
            address, length = region
            try:
                record.output_addr = address
                record.output_data = proc.mem.read_bytes(address, length)
            except Exception:
                record.output_data = b""
            self._charge_record_bytes(proc, len(record.output_data))
        if syscall_model.needs_aslr_fixup(sysno, record.args) and result > 0:
            # Replay will pin the checker's mapping to the address ASLR
            # gave the main (paper §4.3.2).
            fixed = list(record.args)
            fixed[0] = result
            fixed[3] = record.args[3] | abi.MAP_FIXED
            record.fixed_args = tuple(fixed)
        self.current.log.append(record)
        self.stats.syscalls_recorded += 1
        if self.trace.enabled:
            self._emit(tev.SYSCALL_RECORD, proc=proc,
                       segment=self.current.index, sysno=sysno,
                       classification=record.classification)
            if (sysno == abi.SYS_WRITE and result > 0
                    and record.args[0] in (abi.STDOUT, abi.STDERR)):
                stream = ("stdout" if record.args[0] == abi.STDOUT
                          else "stderr")
                console = (self.kernel.console if record.args[0] == abi.STDOUT
                           else self.kernel.stderr_console)
                end = console.mark()
                self._emit(tev.CONSOLE_WRITE, proc=proc,
                           segment=self.current.index, stream=stream,
                           start=end - result, end=end)
        self._record_appended(self.current)

    def _checker_syscall_entry(self, proc: Process, sysno: int,
                               args: Tuple[int, ...]
                               ) -> Optional[SyscallAction]:
        segment = self.segment_of_checker.get(proc.pid)
        replica = segment.replica_of(proc.pid) if segment is not None else None
        if segment is None or replica is None:
            return None
        record = replica.cursor.peek()
        if record is None:
            if segment.end_point is None:
                # RAFT-style concurrency: the checker caught up with the
                # main; block until the record exists.
                self._stall_checker(proc)
                return SyscallAction.emulate(0)
            self._report_error("syscall_divergence", segment,
                               f"checker issued extra syscall {sysno}",
                               proc=proc)
            return SyscallAction.emulate(-abi.ENOSYS)
        problem = self._log_record_problem(replica)
        if problem is not None:
            # Verify *before* the kind/args checks: a corrupted record
            # must surface as a log fault, not as a bogus app divergence.
            self._report_log_integrity(segment, problem)
            return SyscallAction.emulate(-abi.ENOSYS)
        if record.kind != "syscall":
            self._report_error("syscall_divergence", segment,
                               f"expected {record.kind} record, checker "
                               f"issued syscall {sysno}", proc=proc)
            return SyscallAction.emulate(-abi.ENOSYS)
        if record.sysno != sysno or record.args != args:
            self._report_error(
                "syscall_divergence", segment,
                f"main {record.sysno}{record.args} vs checker {sysno}{args}",
                proc=proc)
            return SyscallAction.emulate(-abi.ENOSYS)
        region = syscall_model.input_region(sysno, args)
        if region is not None:
            address, length = region
            try:
                checker_data = proc.mem.read_bytes(address, length)
            except Exception:
                checker_data = None
            self._charge_record_bytes(proc, length)
            if checker_data != record.input_data:
                self._report_error("syscall_divergence", segment,
                                   f"syscall {sysno} data mismatch",
                                   proc=proc)
                return SyscallAction.emulate(-abi.ENOSYS)
        replica.cursor.next()
        self.stats.syscalls_replayed += 1
        self._emit(tev.SYSCALL_REPLAY, proc=proc, segment=segment.index,
                   sysno=sysno)
        if record.replay_passthrough:
            if record.fixed_args is not None:
                self._checker_restore_regs[proc.pid] = args
                for i, value in enumerate(record.fixed_args):
                    proc.cpu.regs.gprs[i + 1] = value
            return None
        if record.output_data:
            try:
                proc.mem.write_bytes(record.output_addr, record.output_data,
                                     force=True)
            except Exception:
                self._report_error("syscall_divergence", segment,
                                   "replay target memory unmapped",
                                   proc=proc)
                return SyscallAction.emulate(-abi.ENOSYS)
        return SyscallAction.emulate(record.result)

    # .. non-syscall stops ..

    def on_stop(self, proc: Process, stop: Stop) -> None:
        role = self.roles.get(proc.pid)
        reason = stop.reason
        if reason in (StopReason.BRK, StopReason.NONDET):
            self._handle_nondet(proc, role)
            return
        if role != "checker":
            # The slicer is quantum-driven; stray main-side overflows are
            # disarmed and ignored.
            proc.cpu.disarm_branch_overflow()
            return
        segment = self.segment_of_checker.get(proc.pid)
        replica = segment.replica_of(proc.pid) if segment is not None else None
        if segment is None or replica is None or replica.replayer is None:
            proc.cpu.disarm_branch_overflow()
            proc.cpu.disarm_instr_overflow()
            return
        replayer = replica.replayer
        if reason == StopReason.INSTR_OVERFLOW:
            if self.config.exec_point_counter == ExecPointCounter.BRANCHES:
                # 1.1x budget exceeded: control-flow corruption (paper
                # §4.2.2 "Handling Timeout").
                self._report_error("timeout", segment,
                                   "checker exceeded instruction budget",
                                   proc=proc)
                return
            outcome = replayer.on_overflow()
        elif reason == StopReason.COUNTER_OVERFLOW:
            outcome = replayer.on_overflow()
            self.executor.charge(proc,
                                 self.kernel.costs.breakpoint_setup_cycles,
                                 phase=mph.RUNTIME)
        elif reason == StopReason.BREAKPOINT:
            outcome = replayer.on_breakpoint()
        else:
            return
        if outcome == ReplayOutcome.OVERRUN:
            self._report_error("exec_point_overrun", segment,
                               "checker ran past the recorded branch count",
                               proc=proc)
            return
        if outcome == ReplayOutcome.REACHED:
            finished_index = replayer.index - 1
            reached = replayer.stops[finished_index]
            if reached.kind == ReplayStopKind.SIGNAL:
                # External-signal replay at the identical execution point
                # (paper §4.3.3).
                self.kernel.deliver_signal_now(proc, reached.signo)
                replayer.arm_next()
            else:
                self._replica_reached_end(segment, replica)

    def _handle_nondet(self, proc: Process, role: Optional[str]) -> None:
        pc = proc.cpu.pc
        instr = proc.mem.fetch(pc)
        if instr.op == I.BRK:
            instr = self.patch_table.get(pc)
            if instr is None:
                # A brk that is not one of our patch sites: a real trap.
                self.kernel.send_signal(proc, abi.SIGTRAP, external=False)
                self.kernel.deliver_pending_signal(proc)
                return
        if role == "main":
            value = self._native_nondet_value(proc, instr)
            if self.current is not None:
                self.current.log.append(NondetRecord(pc, instr.op, value))
                self.stats.nondet_recorded += 1
                self._record_appended(self.current)
            self._apply_nondet(proc, instr, value)
            return
        if role == "checker":
            segment = self.segment_of_checker.get(proc.pid)
            replica = (segment.replica_of(proc.pid)
                       if segment is not None else None)
            if segment is None or replica is None:
                return
            record = replica.cursor.peek()
            if record is None and segment.end_point is None:
                self._stall_checker(proc)
                return
            if record is not None:
                problem = self._log_record_problem(replica)
                if problem is not None:
                    self._report_log_integrity(segment, problem)
                    return
            if (record is None or record.kind != "nondet"
                    or record.pc != pc):
                self._report_error(
                    "syscall_divergence", segment,
                    f"nondet replay mismatch at pc={pc:#x}", proc=proc)
                return
            replica.cursor.next()
            self._apply_nondet(proc, instr, record.value)

    def _native_nondet_value(self, proc: Process, instr: I.Instr) -> int:
        if instr.op == I.RDTSC:
            return proc.nondet.read_tsc()
        if instr.op == I.MRS:
            return proc.nondet.read_sysreg(instr.imm)
        return proc.nondet.cpuid()

    def _apply_nondet(self, proc: Process, instr: I.Instr,
                      value: int) -> None:
        """Emulate the trapped instruction: set the destination register,
        retire it, advance the PC."""
        proc.cpu.regs.gprs[instr.a] = value
        proc.cpu.pc += 4
        proc.cpu.instr_retired += 1
        self.kernel._inject_overcount(proc)

    # .. signals ..

    def on_signal(self, proc: Process, signo: int, external: bool) -> bool:
        role = self.roles.get(proc.pid)
        if role == "main":
            if external:
                # Deliver now (we are at a precise stop) and arrange the
                # checker to receive it at the identical execution point
                # (paper §4.3.3).
                if self.current is not None:
                    segment = self.current
                    point = ExecPoint(
                        proc.cpu.pc,
                        proc.cpu.branches_retired - segment.start_branches,
                        self._instr_reading(proc)
                        - segment.start_instructions)
                    segment.signal_stops.append(
                        ReplayStop(point, ReplayStopKind.SIGNAL, signo))
                    self.stats.signals_recorded += 1
                return True
            # Internal signal (e.g. SIGSEGV from the app itself): record it;
            # the checker's own execution reproduces it (paper §4.3.3).
            if self.current is not None:
                self.current.log.append(SignalRecord(signo, external=False))
                self.stats.signals_recorded += 1
                self._record_appended(self.current)
            return True
        if role == "checker":
            segment = self.segment_of_checker.get(proc.pid)
            replica = (segment.replica_of(proc.pid)
                       if segment is not None else None)
            if segment is None or replica is None:
                return True
            record = replica.cursor.peek()
            if record is not None:
                problem = self._log_record_problem(replica)
                if problem is not None:
                    self._report_log_integrity(segment, problem)
                    return False
            if (record is not None and record.kind == "signal"
                    and record.signo == signo):
                # The checker reproduced the main's own (internal) signal.
                replica.cursor.next()
                if (signo in abi.FATAL_SIGNALS
                        and signo not in proc.signal_handlers):
                    # Both copies die here deterministically: the crash is
                    # faithfully reproduced, not a divergence.  With
                    # several replicas, the first reproduction verifies
                    # the segment; its siblings must not re-count it.
                    replica.reached_end = True
                    if segment.status != SegmentStatus.CHECKED:
                        segment.check_finished_time = \
                            self.executor.current_time
                        segment.status = SegmentStatus.CHECKED
                        self.stats.segments_checked += 1
                        self._emit(tev.SEGMENT_CHECKED, proc=proc,
                                   segment=segment.index,
                                   reproduced_signal=signo)
                        if self.recovery is not None:
                            self.recovery.on_segment_verified(segment)
                return True
            # No matching record: the checker faulted where the main did
            # not -> a detected error (the "Exception" class of §5.6).
            self._report_error("exception", segment,
                               f"checker raised unmatched signal {signo}",
                               proc=proc)
            return False
        return True

    # .. lifecycle ..

    def on_process_exit(self, proc: Process) -> None:
        role = self.roles.get(proc.pid)
        if role == "main":
            if getattr(proc, "oom_killed", False):
                # Memory exhaustion killed the main: live checkers cannot
                # complete either (the pool is full) — tear the whole
                # application down deliberately rather than letting
                # blocked checkers drain one OOM kill at a time.
                self._terminate_application()
                return
            if self.current is not None and not self._terminated:
                # Crash exit (fatal signal): close the last segment at the
                # death point so trailing checkers still verify it.
                self._finalize_segment(end_is_main_exit=True)
            self.sched.on_main_exit()
            if self.pressure is not None:
                # The main can no longer allocate: drain every parked
                # segment so trailing checks still complete.
                self.pressure.on_main_exit()
            return
        if role == "checker":
            segment = self.segment_of_checker.get(proc.pid)
            if segment is None:
                return
            if segment.status == SegmentStatus.CHECKED \
                    and segment.replica_of(proc.pid) is not None \
                    and segment in self.sched.running:
                # Crash faithfully reproduced (see on_signal): retire now.
                self._retire_segment(segment)
                return
            if segment.live and not self._terminated \
                    and not self.stats.errors \
                    and not getattr(proc, "oom_killed", False):
                # An OOM-killed checker is not an application error: the
                # kernel already recorded the exhaustion and the run will
                # classify as OOM, so don't double-report it as a fault.
                self._report_error("exception", segment,
                                   "checker died before its end point",
                                   proc=proc)
            if self.pressure is not None and not self._terminated:
                # If this was the last runnable process, blocked peers
                # must be force-woken or their stalls never resolve.
                self.pressure.on_checker_exit()

    def on_oom(self, proc: Process, can_block: bool = False) -> bool:
        """Kernel OOM hook: a traced process hit the frame-pool budget and
        the emergency reclaim could not free enough.

        A *checker* is expendable: tear it down and re-queue its segment
        from the retained recovery checkpoint (shed), or — when that
        checkpoint is gone or the shed budget is spent — park it on the
        faulting store until other segments retire and free frames
        (block).  Either way a checker-side overrun costs latency, never
        correctness.  The *main* is not salvageable (the stage-1 stall is
        its backpressure; exhaustion despite it means the job exceeds its
        allowance): return False and let the kernel OOM-kill it.
        """
        role = self.roles.get(proc.pid)
        if role != "checker" or self.pressure is None:
            return False
        self.stats.checker_ooms += 1
        segment = self.segment_of_checker.get(proc.pid)
        if segment is None:
            return False
        main = self.main
        others = any(p.runnable and p.core is not None and p is not proc
                     for p in self.kernel.processes.values())
        if not others and self._main_stalled_on_pressure \
                and main is not None and main.alive:
            # Sacrificing or parking this checker would leave nothing
            # runnable; un-stall the main instead (running over budget
            # beats wedging — its allocations re-enter reclaim).
            self.pressure.force_release_stall()
            others = main.runnable and main.core is not None
        if not others:
            # Nothing left that could ever free a frame: the job exceeds
            # its memory allowance — end the run as an OOM, not a hang.
            if main is not None and main.alive and main is not proc:
                self.kernel.oom_kill(main)
            return False
        if (segment.recovery_checkpoint is not None
                and not segment.checkpoint_evicted
                and segment.sheds < self.config.pressure_max_segment_sheds):
            # Shed the whole replica set: the respawn path rebuilds every
            # replica from the retained checkpoint, so keeping a sibling
            # of the OOMing checker alive would only double it up later.
            self._teardown_replicas(segment, exit_code=128 + abi.SIGKILL)
            self.sched.on_checker_done(segment)
            segment.checker = None
            segment.sheds += 1
            segment.status = SegmentStatus.READY
            self.pressure.note_stage(2)
            self.stats.pressure_sheds += 1
            # Legal at stage 2: the emergency reclaim engaged the stage-1
            # stall before the allocation was allowed to fail.
            self._emit(tev.PRESSURE_SHED, segment=segment.index, stage=2,
                       cause="oom", freed=0)
            self.pressure.park(segment)
            return True
        if can_block:
            # No checkpoint to respawn from: hold the checker on the
            # faulting store; retirement of other segments frees frames
            # and the pressure controller wakes it to retry.
            self.pressure.block_checker(proc, segment)
            return True
        # Mid-side-effect (not resumable) and not sheddable: this segment
        # can never be verified within the allowance, so the run ends as
        # an OOM — kill the main too (the kernel then kills the checker;
        # its death is not reported as an application error because the
        # OOM exit class already accounts for it).
        if main is not None and main.alive and main is not proc:
            self.kernel.oom_kill(main)
        return False

    def _main_progress_units(self, proc: Process) -> float:
        """The main's absolute progress in slicing units (cycles), used by
        the pressure controller's dirty-rate estimator."""
        if self.slicing_unit == "cycles":
            return proc.user_cycles
        return self._instr_reading(proc) * self.platform.cycle_scale

    def on_quantum(self, proc: Process, executed: int) -> None:
        role = self.roles.get(proc.pid)
        for hook in self.quantum_hooks:
            hook(proc, role or "?")
        if self.pressure is not None:
            self.pressure.poll(proc, role or "?")
            if not proc.alive or self._terminated:
                return
        if role != "main" or self.current is None:
            return
        if self.recovery is not None:
            self.recovery.check_watchdog(proc)
            if not proc.alive or self._terminated:
                return
        if not self.mode.slices:
            return
        if self._main_stalled_on_pressure:
            # Stage-1 backpressure put the main to sleep this quantum; the
            # boundary decision waits until the stall releases.
            return
        segment = self.current
        if self.slicing_unit == "cycles":
            progress = proc.user_cycles - segment.start_cycles
        else:
            progress = ((self._instr_reading(proc)
                         - segment.start_instructions)
                        * self.platform.cycle_scale)
        period = (self.recovery.effective_slicing_period()
                  if self.recovery is not None
                  else self.config.slicing_period)
        if self.pressure is not None:
            adapted = self.pressure.effective_period()
            if adapted is not None:
                period = min(period, adapted)
        if progress < period:
            return
        if self._live_segments() >= self.config.max_live_segments:
            # Detection-latency bound (§3.4): stall the main until a
            # segment retires rather than growing the live set.
            self._main_stalled_on_cap = True
            proc.state = ProcessState.WAITING
            self.profiler.open_span(proc.pid, mph.CAP_STALL)
            self._emit(tev.MAIN_STALL, proc=proc, segment=segment.index,
                       reason=tev.STALL_CAP)
            return
        self._boundary()

    # ------------------------------------------------------------ segment check

    def _replica_reached_end(self, segment: Segment, replica) -> None:
        """One replica reached the segment end point.

        With a MEEK split configured, the replica takes its early check
        immediately (detection as soon as *this* replica arrives, not at
        the full boundary).  The mode's boundary check runs once every
        replica has arrived; earlier arrivals park on their cores.
        """
        replica.reached_end = True
        if (self.config.compare_state and self.config.meek_split > 0
                and segment.end_checkpoint is not None):
            self._meek_early_check(segment, replica)
        if segment.all_replicas_arrived():
            self.mode.boundary_check(self, segment)
            return
        # Park until the sibling replicas arrive.  Deliberately not a
        # CHECKER_STALL: no record append can wake this replica — the
        # boundary check is what consumes it.
        replica.process.state = ProcessState.WAITING

    def _meek_early_check(self, segment: Segment, replica) -> None:
        """MEEK split stage 1: on arrival, compare PC/registers plus the
        first ``ceil(meek_split * n)`` pages of the sorted dirty union.
        The boundary stage covers the remainder — work is divided between
        the two stages, never duplicated."""
        checker = replica.process
        union = set(segment.main_dirty_vpns)
        union.update(self.dirty_tracker.dirty_vpns(checker))
        self.executor.charge(checker, self.kernel.costs.dirty_scan_cycles(
            checker.mem.mapped_pages), phase=mph.DIRTY_SCAN)
        ordered = sorted(union)
        take = math.ceil(self.config.meek_split * len(ordered))
        early_vpns = ordered[:take]
        result = self.comparator.compare(checker, segment.end_checkpoint,
                                         set(early_vpns))
        self.executor.charge(
            checker, self.kernel.costs.hash_cycles(result.bytes_hashed),
            phase=mph.COMPARISON)
        replica.early_result = result
        replica.early_vpns = tuple(early_vpns)
        self.stats.meek_early_checks += 1
        if not result.match:
            self.stats.meek_early_detections += 1
        self._emit(tev.COMPARISON, proc=checker, segment=segment.index,
                   match=result.match, bytes_hashed=result.bytes_hashed,
                   stage="early")

    def _compare_replica(self, segment: Segment, replica,
                         phase: str):
        """Compare one replica against the end checkpoint; returns
        ``(result, union)``.  Honors a MEEK early verdict: the boundary
        stage hashes only the pages the early check did not cover, and
        an early mismatch carries through to the combined verdict."""
        checker = replica.process
        checkpoint = segment.end_checkpoint
        union = set(segment.main_dirty_vpns)
        union.update(self.dirty_tracker.dirty_vpns(checker))
        if replica.early_result is None:
            # The MEEK path already scanned on arrival (the replica has
            # been parked since, so its dirty set is unchanged).
            self.executor.charge(
                checker,
                self.kernel.costs.dirty_scan_cycles(
                    checker.mem.mapped_pages),
                phase=mph.DIRTY_SCAN)
        late_vpns = union - set(replica.early_vpns)
        result = self.comparator.compare(checker, checkpoint, late_vpns)
        self.executor.charge(
            checker, self.kernel.costs.hash_cycles(result.bytes_hashed),
            phase=phase)
        early = replica.early_result
        if early is not None and not early.match and result.match:
            # The divergence lives in the early slice: the combined
            # verdict is the AND of the two stages.
            result = early
        self._emit(tev.COMPARISON, proc=checker, segment=segment.index,
                   match=result.match, bytes_hashed=result.bytes_hashed)
        return result, union

    def _pairwise_boundary_check(self, segment: Segment) -> None:
        """The paper's boundary policy (and the mode-hook default): one
        checker, compared pairwise against the end checkpoint."""
        checkpoint = segment.end_checkpoint
        if self.config.compare_state:
            for hook in self.compare_hooks:
                hook(segment)
            replica = segment.replicas[0]
            checker = replica.process
            result, union = self._compare_replica(segment, replica,
                                                  mph.COMPARISON)
            if not result.match:
                if result.reason == "integrity":
                    # The two hash paths disagreed: the comparator itself
                    # is faulty, so no verdict it produced can be trusted
                    # — including the ones that admitted earlier segments.
                    self._integrity_fail("digest", segment,
                                         result.describe())
                    self._report_error("infra_integrity", segment,
                                       result.describe())
                else:
                    self._report_error("state_mismatch", segment,
                                       result.describe())
                return
            if self.config.clean_page_audit > 0:
                audited, bad, audit_bytes = audit_clean_pages(
                    checker, checkpoint, union,
                    self.config.clean_page_audit)
                self.stats.integrity_checks += 1
                self.executor.charge(
                    checker, self.kernel.costs.hash_cycles(audit_bytes),
                    phase=mph.HASHING)
                self._emit(tev.INTEGRITY_CHECK, proc=checker,
                           segment=segment.index, check="clean_page_audit",
                           audited=len(audited), ok=not bad)
                if bad:
                    shown = ", ".join(hex(v) for v in bad[:4])
                    detail = (f"clean-page audit: {len(bad)} page(s) "
                              f"modified but missing from the dirty union "
                              f"(vpn {shown}) — dirty tracking "
                              f"under-reported")
                    # The tracker lied, so this comparison (and any other
                    # that trusted its union) proves nothing: integrity
                    # fail-stop, not an application mismatch.
                    self._integrity_fail("clean_page_audit", segment,
                                         detail)
                    self._report_error("infra_integrity", segment, detail)
                    return
        self._segment_verified(segment)

    def _segment_verified(self, segment: Segment) -> None:
        """The boundary policy accepted the segment: mark it CHECKED and
        retire its resources."""
        segment.check_finished_time = self.executor.current_time
        segment.status = SegmentStatus.CHECKED
        self.stats.segments_checked += 1
        self._emit(tev.SEGMENT_CHECKED, proc=segment.checker,
                   segment=segment.index)
        if self.recovery is not None:
            self.recovery.on_segment_verified(segment)
        self._retire_segment(segment)

    def _forward_recover(self, segment: Segment, vote) -> None:
        """The main was outvoted: adopt the majority state and continue
        *forward* from the boundary (TMR; never a rollback).

        The winning replica replayed the segment from the verified start
        state, so its state at the end point *is* the majority state —
        promotion needs no patching: the winner simply becomes the new
        main.  Execution the old main performed past this boundary was
        built on the faulted state and is discarded (segments after this
        one roll up as ``segment_rolled_back`` with
        ``cause="forward_recovery"``); the boundary itself — and every
        byte of output committed before it — survives, which is what
        distinguishes forward recovery from a rollback.
        """
        winner = segment.replicas[vote.winner_index]
        new_main = winner.process
        old_main = self.main
        main_was_alive = old_main.alive
        # -- detach the winner from its checker identity ---------------
        segment.replicas.remove(winner)
        self.segment_of_checker.pop(new_main.pid, None)
        self._stalled_checkers.discard(new_main.pid)
        # Its replay work stays accounted as checker work; from here on
        # its cycles are the main's.
        self.stats.checker_user_time += new_main.user_time
        self.stats.checker_sys_time += new_main.sys_time
        self.stats.checker_cycles_big += new_main.cycles_big
        self.stats.checker_cycles_little += new_main.cycles_little
        winner.replayer = None
        new_main.cpu.disarm_branch_overflow()
        new_main.cpu.disarm_instr_overflow()
        # -- discard everything recorded after the boundary ------------
        later = [s for s in self.segments
                 if s.index > segment.index and s.live]
        if later:
            first = min(later, key=lambda s: s.index)
            self._truncate_consoles(first)
        for stale in later:
            # De-queue first: a discard frees cores, and the scheduler
            # would otherwise place a sibling we are about to tear down.
            if stale in self.sched.pending:
                self.sched.pending.remove(stale)
        for stale in later:
            self._discard_segment_forward(stale)
        # -- retire the old main (no rollback is counted) --------------
        old_core = old_main.core
        self.kernel.promote_process(old_main, new_main)
        self.roles.pop(old_main.pid, None)
        self.executor.unassign(old_main)
        self.executor.unassign(new_main)
        self.roles[new_main.pid] = "main"
        # Wall-clock stats measure the protected job, which started when
        # the original main spawned.
        new_main.spawn_time = old_main.spawn_time
        self.main = new_main
        core = old_core
        if core is None or core.occupant is not None:
            core = (self.executor.free_core("big")
                    or self.executor.free_core("little"))
        self.executor.assign(new_main, core)
        new_main.state = ProcessState.RUNNING
        new_main.ready_time = max(new_main.ready_time,
                                  self.executor.current_time)
        # -- reset coordinator state the discarded execution owned -----
        self.current = None
        self._pending_syscall = None
        self._pending_mmap_split = False
        self._main_stalled_on_cap = False
        self._main_stalled_for_containment = False
        self._main_stalled_on_pressure = False
        self.stats.tmr_forward_recoveries += 1
        self._emit(tev.FORWARD_RECOVERY, proc=new_main,
                   segment=segment.index, winner_pid=new_main.pid,
                   discarded=[s.index for s in later])
        # The boundary itself is majority-verified.
        self._segment_verified(segment)
        if main_was_alive:
            # The old main was mid-recording: open a fresh segment from
            # the adopted state.
            self.sched.main_done = False
            self._start_segment()
        else:
            # Final segment: the promoted winner sits on the exit
            # syscall's execution point and will exit natively with the
            # majority state.
            self.kernel.reap(old_main)

    def _truncate_consoles(self, first_discarded: Segment) -> None:
        """Throw away console output the discarded execution produced."""
        for console, stream, mark in (
                (self.kernel.console, "stdout",
                 first_discarded.console_mark),
                (self.kernel.stderr_console, "stderr",
                 first_discarded.stderr_mark)):
            if console.mark() > mark:
                console.truncate(mark)
                self._emit(tev.CONSOLE_TRUNCATE, stream=stream,
                           length=mark,
                           segment=first_discarded.index)

    def _discard_segment_forward(self, segment: Segment) -> None:
        """Discard a segment recorded after a forward-recovery boundary:
        its start state descends from the outvoted main."""
        if segment in self.sched.pending:
            self.sched.pending.remove(segment)
        self._teardown_replicas(segment)
        self.sched.on_checker_done(segment)
        segment.checker = None
        if segment.end_checkpoint is not None and not segment.end_is_main:
            self.roles.pop(segment.end_checkpoint.pid, None)
            self.kernel.reap(segment.end_checkpoint)
            segment.end_checkpoint = None
        if segment.recovery_checkpoint is not None:
            self.roles.pop(segment.recovery_checkpoint.pid, None)
            self.kernel.reap(segment.recovery_checkpoint)
            segment.recovery_checkpoint = None
        segment.status = SegmentStatus.ROLLED_BACK
        self._emit(tev.SEGMENT_ROLLED_BACK, segment=segment.index,
                   cause="forward_recovery")

    def _retire_segment(self, segment: Segment) -> None:
        if segment.retired:
            return
        segment.retired = True
        for replica in segment.replicas:
            checker = replica.process
            if checker is None:
                continue
            self.stats.checker_user_time += checker.user_time
            self.stats.checker_sys_time += checker.sys_time
            self.stats.checker_cycles_big += checker.cycles_big
            self.stats.checker_cycles_little += checker.cycles_little
            if checker.alive:
                self.kernel.exit_process(checker, 0)
            self.kernel.reap(checker)
        if segment.end_checkpoint is not None and not segment.end_is_main:
            self.kernel.reap(segment.end_checkpoint)
        if segment.recovery_checkpoint is not None:
            self.kernel.reap(segment.recovery_checkpoint)
        self.sched.on_checker_done(segment)
        self._emit(tev.SEGMENT_RETIRE, segment=segment.index)
        self._maybe_wake_stalled_main()
        if self.pressure is not None:
            # Retirement frees frames: re-evaluate the stall and give one
            # parked segment a chance to respawn.
            self.pressure.on_retire()

    def _containment_blocked(self) -> bool:
        """True while the containment predicate still holds: some segment
        earlier than the current one is live (unverified)."""
        current = self.current
        if current is None:
            return False
        return any(s.live for s in self.segments if s.index < current.index)

    def _maybe_wake_stalled_main(self) -> None:
        """Wake a stalled main iff its stall predicate no longer holds.

        Called whenever a segment leaves the live set (retirement or
        failure).  The wake predicate must be re-checked here rather than
        waking unconditionally: with ``max_live_segments > 2`` a *later*
        segment can retire while an earlier one is still unverified, and a
        containment-stalled main woken then would violate the containment
        invariant it stalled to preserve.  The held syscall is re-issued,
        never skipped — the stall left the PC on the syscall instruction,
        so resuming re-enters ``_main_syscall_entry`` with the (now
        satisfied) predicate and the syscall executes for real.
        """
        main = self.main
        if main is None or not main.alive:
            return
        if not (self._main_stalled_on_cap
                or self._main_stalled_for_containment
                or self._main_stalled_on_pressure):
            return
        if self._main_stalled_on_cap \
                and self._live_segments() >= self.config.max_live_segments:
            return
        if self._main_stalled_for_containment and self._containment_blocked():
            return
        if self._main_stalled_on_pressure and self.pressure is not None \
                and self.pressure.stall_engaged:
            return
        reason = (tev.STALL_CONTAINMENT if self._main_stalled_for_containment
                  else tev.STALL_CAP if self._main_stalled_on_cap
                  else tev.STALL_PRESSURE)
        self._main_stalled_on_cap = False
        self._main_stalled_for_containment = False
        self._main_stalled_on_pressure = False
        main.state = ProcessState.RUNNING
        main.ready_time = max(main.ready_time, self.executor.current_time)
        self.profiler.close_span(main.pid)
        self._emit(tev.MAIN_WAKE, proc=main,
                   segment=self.current.index if self.current else None,
                   reason=reason)
        # A deferred boundary or held syscall re-fires on the main's next
        # quantum.

    # ---------------------------------------------------------------- stats

    def _finalize_stats(self) -> None:
        main = self.main
        stats = self.stats
        stats.exit_code = main.exit_code
        stats.stdout = self.kernel.console.text()
        stats.stderr = self.kernel.stderr_console.text()
        end = main.exit_time if main.exit_time is not None \
            else self.executor.current_time
        stats.main_wall_time = end - main.spawn_time
        stats.main_user_time = main.user_time
        stats.main_sys_time = main.sys_time
        finish_times = [end]
        finish_times.extend(s.check_finished_time for s in self.segments
                            if s.check_finished_time is not None)
        stats.all_wall_time = max(finish_times) - main.spawn_time
        stats.energy_joules = self.executor.total_energy_joules(
            wall=stats.all_wall_time)
        stats.peak_resident_bytes = float(self.kernel.pool.peak_resident_bytes)
        stats.oom_kills = self.kernel.stats.get("oom_kills", 0)
        stats.oom_killed = bool(getattr(main, "oom_killed", False))
        self._finalize_metrics()

    def _finalize_metrics(self) -> None:
        """Snapshot the phase profiler, mirror kernel counters into the
        registry, and emit the ``phase_totals`` conservation event."""
        for key, value in self.kernel.stats.items():
            self.metrics.counter(f"kernel.{key}").set(float(value))
        profile = self.profiler.finish()
        self.stats.phase_profile = profile
        self.stats.metrics = self.metrics
        if not self.profiler.enabled:
            return
        for phase, cyc in profile.cycles.items():
            self.metrics.counter("phase.cycles", phase=phase).set(cyc)
        for phase, sec in profile.stall_seconds.items():
            self.metrics.gauge("phase.stall_seconds", phase=phase).set(sec)
        if self.trace.enabled:
            self.trace.emit(tev.PHASE_TOTALS,
                            total=self.executor.charged_cycles,
                            phases=dict(profile.cycles))

    # ------------------------------------------------------------- memory sampling

    def enable_memory_sampling(self, interval: float = 0.5) -> None:
        """Sample the summed PSS of main + checker processes (paper §5.1:
        checkpoints' private memory is excluded, as it can be swapped out).

        Sharing is apportioned within the sampled set: a frame mapped by
        several live processes counts once, and references held only by
        retained recovery checkpoints do not dilute the total — their
        copies are swappable and already excluded from this figure.
        """

        def sample(_when: float) -> None:
            frames: Dict[int, int] = {}
            for pid, role in self.roles.items():
                if role not in ("main", "checker"):
                    continue
                proc = self.kernel.processes.get(pid)
                if proc is None or not proc.alive:
                    continue
                for pte in proc.mem.pages.values():
                    frames[id(pte.frame)] = proc.mem.page_size
            self.stats.pss_samples.append(float(sum(frames.values())))

        self.executor.add_sampler(interval, sample)

    def enable_metrics_sampling(self, interval: float = 0.5,
                                callback=None) -> None:
        """Snapshot live-run gauges (live/queued checkers, frame-pool
        occupancy, retained checkpoints, dirty-page rate, pacer
        frequency) into the registry's time series every ``interval``
        virtual seconds.  ``callback(when, registry)`` — if given — runs
        after each sample; the TTY dashboard hooks in here."""
        registry = self.metrics
        pool = self.kernel.pool
        page = self.platform.page_size
        state = {"pages": 0, "when": 0.0}

        def sample(when: float) -> None:
            registry.gauge("parallaft.live_checkers").set(
                len(self.sched.running))
            registry.gauge("parallaft.queued_checkers").set(
                len(self.sched.pending))
            registry.gauge("parallaft.live_segments").set(
                self._live_segments())
            registry.gauge("parallaft.retained_checkpoints").set(sum(
                1 for s in self.segments
                if s.recovery_checkpoint is not None and not s.retired
                and not s.checkpoint_evicted))
            registry.gauge("pool.resident_bytes").set(pool.resident_bytes)
            if pool.budget_bytes:
                registry.gauge("pool.utilization").set(
                    pool.resident_bytes / pool.budget_bytes)
            pages = pool.frames_allocated + pool.frames_copied
            dt = when - state["when"]
            if dt > 0:
                registry.gauge("parallaft.dirty_page_bytes_per_s").set(
                    (pages - state["pages"]) * page / dt)
            state["pages"], state["when"] = pages, when
            if self.executor.little_cores:
                registry.gauge("sched.little_freq_hz").set(
                    self.executor.little_cores[0].freq_hz)
            registry.sample(when)
            if callback is not None:
                callback(when, registry)

        self.executor.add_sampler(interval, sample)


def protect(program: Program, **kwargs) -> RunStats:
    """One-call convenience: run ``program`` under Parallaft."""
    return Parallaft(program, **kwargs).run()

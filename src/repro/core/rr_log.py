"""The record/replay log (paper §3.2, §4.3).

While the main process executes a segment, every interaction with the
outside world is recorded: syscalls (number, arguments, input data, result,
output data), signals (with the execution point of delivery), and
nondeterministic instructions (pc + value).  A checker replaying the segment
consumes the records in order; any disagreement between what the checker
does and what was recorded is a detected divergence.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Record:
    """Base class so the replay cursor can type-check what it dequeues."""

    kind = "?"


class SyscallRecord(Record):
    kind = "syscall"

    __slots__ = ("sysno", "args", "input_data", "result", "output_addr",
                 "output_data", "classification", "replay_passthrough",
                 "fixed_args")

    def __init__(self, sysno: int, args: Tuple[int, ...],
                 classification: str,
                 input_data: bytes = b"",
                 result: int = 0,
                 output_addr: int = 0,
                 output_data: bytes = b"",
                 replay_passthrough: bool = False,
                 fixed_args: Optional[Tuple[int, ...]] = None):
        self.sysno = sysno
        self.args = args
        self.classification = classification
        self.input_data = input_data
        self.result = result
        self.output_addr = output_addr
        self.output_data = output_data
        #: Locally-effectful syscalls are re-executed by the checker rather
        #: than emulated (paper §4.3.1).
        self.replay_passthrough = replay_passthrough
        #: Argument rewrite applied at replay (mmap MAP_FIXED, §4.3.2).
        self.fixed_args = fixed_args

    def __repr__(self) -> str:
        return (f"SyscallRecord({self.sysno}, args={self.args}, "
                f"class={self.classification}, result={self.result})")


class SignalRecord(Record):
    kind = "signal"

    __slots__ = ("signo", "external", "exec_point")

    def __init__(self, signo: int, external: bool, exec_point=None):
        self.signo = signo
        self.external = external
        #: For external signals: the ExecPoint where delivery happened in
        #: the main, so the checker receives it at the same point (§4.3.3).
        self.exec_point = exec_point

    def __repr__(self) -> str:
        return (f"SignalRecord({self.signo}, "
                f"{'external' if self.external else 'internal'})")


class NondetRecord(Record):
    kind = "nondet"

    __slots__ = ("pc", "opcode", "value")

    def __init__(self, pc: int, opcode: int, value: int):
        self.pc = pc
        self.opcode = opcode
        self.value = value

    def __repr__(self) -> str:
        return f"NondetRecord(pc={self.pc:#x}, value={self.value})"


class RrLog:
    """Ordered record stream for one segment, with per-checker cursor."""

    def __init__(self):
        self.records: List[Record] = []
        #: Bytes of syscall data captured (drives recording cost, §5.7).
        self.bytes_recorded = 0

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: Record) -> None:
        self.records.append(record)

    def cursor(self) -> "RrCursor":
        return RrCursor(self)


class RrCursor:
    """A checker's position in its segment's log."""

    def __init__(self, log: RrLog):
        self._log = log
        self.position = 0

    def peek(self) -> Optional[Record]:
        if self.position < len(self._log.records):
            return self._log.records[self.position]
        return None

    def next(self) -> Optional[Record]:
        record = self.peek()
        if record is not None:
            self.position += 1
        return record

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self._log.records)

"""The record/replay log (paper §3.2, §4.3).

While the main process executes a segment, every interaction with the
outside world is recorded: syscalls (number, arguments, input data, result,
output data), signals (with the execution point of delivery), and
nondeterministic instructions (pc + value).  A checker replaying the segment
consumes the records in order; any disagreement between what the checker
does and what was recorded is a detected divergence.

Replay correctness hinges entirely on log integrity (rr makes the same
assumption explicit): a flipped bit in a stored record silently poisons
the checker's view of the world.  With ``ParallaftConfig.log_checksums``
on, :meth:`RrLog.append` stamps each record with a monotonic sequence
number and a content checksum; :func:`verify_record` re-checks both just
before the cursor consumes the record, so corruption (or reordering /
splicing) surfaces as a typed ``log_integrity`` error instead of a bogus
replay divergence — or worse, a silent escape.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.hashing import Xxh3_64


class Record:
    """Base class so the replay cursor can type-check what it dequeues."""

    kind = "?"


class SyscallRecord(Record):
    kind = "syscall"

    __slots__ = ("sysno", "args", "input_data", "result", "output_addr",
                 "output_data", "classification", "replay_passthrough",
                 "fixed_args")

    def __init__(self, sysno: int, args: Tuple[int, ...],
                 classification: str,
                 input_data: bytes = b"",
                 result: int = 0,
                 output_addr: int = 0,
                 output_data: bytes = b"",
                 replay_passthrough: bool = False,
                 fixed_args: Optional[Tuple[int, ...]] = None):
        self.sysno = sysno
        self.args = args
        self.classification = classification
        self.input_data = input_data
        self.result = result
        self.output_addr = output_addr
        self.output_data = output_data
        #: Locally-effectful syscalls are re-executed by the checker rather
        #: than emulated (paper §4.3.1).
        self.replay_passthrough = replay_passthrough
        #: Argument rewrite applied at replay (mmap MAP_FIXED, §4.3.2).
        self.fixed_args = fixed_args

    def __repr__(self) -> str:
        return (f"SyscallRecord({self.sysno}, args={self.args}, "
                f"class={self.classification}, result={self.result})")


class SignalRecord(Record):
    kind = "signal"

    __slots__ = ("signo", "external", "exec_point")

    def __init__(self, signo: int, external: bool, exec_point=None):
        self.signo = signo
        self.external = external
        #: For external signals: the ExecPoint where delivery happened in
        #: the main, so the checker receives it at the same point (§4.3.3).
        self.exec_point = exec_point

    def __repr__(self) -> str:
        return (f"SignalRecord({self.signo}, "
                f"{'external' if self.external else 'internal'})")


class NondetRecord(Record):
    kind = "nondet"

    __slots__ = ("pc", "opcode", "value")

    def __init__(self, pc: int, opcode: int, value: int):
        self.pc = pc
        self.opcode = opcode
        self.value = value

    def __repr__(self) -> str:
        return f"NondetRecord(pc={self.pc:#x}, value={self.value})"


def record_checksum(record: Record) -> int:
    """Content checksum over every replay-relevant field of a record.

    The field tuple is serialized via ``repr`` — stable for the int /
    bytes / tuple payloads records carry, and independent of object
    identity — and hashed with the same XXH3-64 the comparator uses.
    """
    hasher = Xxh3_64()
    hasher.update(record.kind.encode())
    if record.kind == "syscall":
        fields = (record.sysno, record.args, record.classification,
                  record.input_data, record.result, record.output_addr,
                  record.output_data, record.replay_passthrough,
                  record.fixed_args)
    elif record.kind == "signal":
        fields = (record.signo, record.external, repr(record.exec_point))
    elif record.kind == "nondet":
        fields = (record.pc, record.opcode, record.value)
    else:  # pragma: no cover - no other kinds exist
        fields = ()
    hasher.update(repr(fields).encode())
    return hasher.digest()


def verify_record(record: Record, position: int) -> Optional[str]:
    """Check a record's integrity metadata just before replay consumes it.

    Returns ``None`` when the record is intact, else a human-readable
    description of the violation (missing metadata, sequence break, or
    checksum mismatch).
    """
    seq = getattr(record, "seq", None)
    stored = getattr(record, "checksum", None)
    if seq is None or stored is None:
        return (f"record {position} ({record.kind}) carries no integrity "
                f"metadata")
    if seq != position:
        return (f"record {position} ({record.kind}) has sequence number "
                f"{seq} — log reordered or spliced")
    actual = record_checksum(record)
    if actual != stored:
        return (f"record {position} ({record.kind}) checksum mismatch: "
                f"stored {stored:#018x}, recomputed {actual:#018x}")
    return None


class RrLog:
    """Ordered record stream for one segment, with per-checker cursor."""

    def __init__(self):
        self.records: List[Record] = []
        #: Bytes of syscall data captured (drives recording cost, §5.7).
        self.bytes_recorded = 0
        #: When on (``ParallaftConfig.log_checksums``), ``append`` stamps
        #: each record with ``seq``/``checksum`` integrity metadata.
        self.integrity = False

    def __len__(self) -> int:
        return len(self.records)

    def append(self, record: Record) -> None:
        self.records.append(record)
        if self.integrity:
            # The runtime appends on syscall *exit*, after result/output
            # fields are final, so the checksum covers the stored values.
            record.seq = len(self.records) - 1
            record.checksum = record_checksum(record)

    def cursor(self) -> "RrCursor":
        return RrCursor(self)


class RrCursor:
    """A checker's position in its segment's log."""

    def __init__(self, log: RrLog):
        self._log = log
        self.position = 0

    def peek(self) -> Optional[Record]:
        if self.position < len(self._log.records):
            return self._log.records[self.position]
        return None

    def next(self) -> Optional[Record]:
        record = self.peek()
        if record is not None:
            self.position += 1
        return record

    @property
    def exhausted(self) -> bool:
        return self.position >= len(self._log.records)

"""Checker scheduling and pacing (paper §4.5, figure 4).

Placement: each released checker gets its own core in the checker cluster
(little cores for Parallaft, big cores for the RAFT model).  When the little
cores run out, the *oldest* running checker is migrated to a free big core —
briefly energy-inefficient, but it frees a little core so the newest checker
can start instead of queueing work for later.  After the main exits, the
remaining checkers are migrated to big cores to finish quickly.

Pacing: standard DVFS governors would run the compute-bound checkers at
maximum clock unnecessarily (paper footnote 10).  The pacer instead sets the
little cluster's frequency so its total throughput just covers the measured
checker demand: f = headroom * work_per_segment / (n_little *
segment_interval).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import ParallaftConfig
from repro.core.segment import Segment, SegmentStatus
from repro.core.stats import RunStats
from repro.kernel.process import Process, ProcessState
from repro.metrics import phases as mph
from repro.sim.cores import Core
from repro.sim.executor import Executor, core_label
from repro.trace import events as tev

#: Cycles charged for migrating a checker between cores (context + cache
#: warmup is modelled separately by the LLC contention term).
MIGRATION_COST_CYCLES = 25_000.0


class CheckerScheduler:
    def __init__(self, executor: Executor, config: ParallaftConfig,
                 stats: RunStats):
        self.executor = executor
        self.config = config
        self.stats = stats
        self.pending: List[Segment] = []
        self.running: List[Segment] = []
        self.main_done = False
        # Pacer state: EWMA of per-segment checker work and interval.
        self._work_ewma: Optional[float] = None
        self._interval_ewma: Optional[float] = None

    # -- placement --------------------------------------------------------

    def submit(self, segment: Segment) -> None:
        """A segment became READY: run its checkers as soon as possible."""
        segment.status = SegmentStatus.CHECKING
        if not self._try_place(segment):
            self.pending.append(segment)

    def _free_cores(self, cluster: str) -> List[Core]:
        """Free cores in ``cluster``, most-behind first."""
        free = [c for c in self.executor.cores
                if c.cluster == cluster and c.occupant is None]
        free.sort(key=lambda c: c.local_time)
        return free

    def _try_place(self, segment: Segment) -> bool:
        """Place every replica of ``segment`` at once, or not at all.

        Multi-replica segments (TMR) need one core per replica; placing
        a subset would let one replica race ahead only to park at the
        end point holding its core while its sibling still queues.
        """
        need = max(1, len(segment.replicas))
        cluster = self.config.checker_cluster
        free = self._free_cores(cluster)
        while (len(free) < need and cluster == "little"
               and self.config.enable_migration
               and self._migrate_oldest_to_big()):
            free = self._free_cores(cluster)
        if len(free) < need and self.main_done and self.config.enable_migration:
            # Tail phase: any core will do (big preferred: finish quickly).
            free = self._free_cores("big") + self._free_cores("little")
        if len(free) < need:
            return False
        self._start_on(segment, free[:need])
        return True

    def _start_on(self, segment: Segment, cores: List[Core]) -> None:
        segment.checker_user_cycles_at_start = 0.0
        trace = self.executor.trace
        for replica, core in zip(segment.replicas, cores):
            checker = replica.process
            self.executor.assign(checker, core)
            checker.state = ProcessState.RUNNING
            checker.ready_time = max(checker.ready_time,
                                     self.executor.current_time)
            segment.checker_user_cycles_at_start += checker.user_cycles
            if trace.enabled:
                trace.emit(tev.CHECKER_PLACE, pid=checker.pid,
                           role="checker", core=core_label(core),
                           segment=segment.index)
        segment.check_started_time = self.executor.current_time
        self.running.append(segment)

    def _migrate_oldest_to_big(self) -> bool:
        """Free a little core by moving the oldest checker to a big core
        (paper figure 4)."""
        big = self.executor.free_core("big")
        if big is None:
            return False
        on_little = [(s, r.process) for s in self.running
                     for r in s.replicas
                     if r.process is not None and r.process.core is not None
                     and not r.process.core.is_big]
        if not on_little:
            return False
        oldest, proc = min(on_little, key=lambda sr: sr[0].index)
        self.migrate(oldest, big, proc)
        return True

    def migrate(self, segment: Segment, core: Core,
                proc: Optional[Process] = None) -> None:
        checker = proc if proc is not None else segment.checker
        self.executor.assign(checker, core)
        self.executor.charge(checker, MIGRATION_COST_CYCLES,
                             phase=mph.RUNTIME)
        segment.checker_was_migrated = True
        self.stats.checker_migrations += 1
        trace = self.executor.trace
        if trace.enabled:
            trace.emit(tev.CHECKER_MIGRATE, pid=checker.pid, role="checker",
                       core=core_label(core), segment=segment.index)

    # -- completion ----------------------------------------------------------------

    def on_checker_done(self, segment: Segment) -> None:
        if segment in self.running:
            self.running.remove(segment)
        for replica in segment.replicas:
            checker = replica.process
            if checker is None:
                continue
            if checker.core is not None and checker.core.is_big:
                self.stats.checkers_finished_on_big += 1
            self.executor.unassign(checker)
        self._update_pacer(segment)
        while self.pending and self._try_place(self.pending[0]):
            self.pending.pop(0)

    def on_main_exit(self) -> None:
        """Migrate stragglers to big cores and run flat out (paper §4.5)."""
        self.main_done = True
        for core in self.executor.little_cores:
            core.set_frequency(core.freq_max_hz)
        if self.config.enable_migration:
            for segment in sorted(self.running, key=lambda s: s.index):
                for replica in segment.replicas:
                    checker = replica.process
                    if checker is None or checker.core is None \
                            or checker.core.is_big:
                        continue
                    big = self.executor.free_core("big")
                    if big is None:
                        break
                    self.migrate(segment, big, checker)
        while self.pending and self._try_place(self.pending[0]):
            self.pending.pop(0)

    # -- pacing ------------------------------------------------------------------------

    def _update_pacer(self, segment: Segment) -> None:
        if (not self.config.enable_dvfs_pacer or self.main_done
                or not segment.replicas):
            return
        work_cycles = (sum(r.process.user_cycles for r in segment.replicas
                           if r.process is not None)
                       - segment.checker_user_cycles_at_start)
        interval = None
        if segment.ready_time is not None:
            interval = max(1e-9, segment.ready_time - segment.start_time)
        if interval is None or work_cycles <= 0:
            return
        alpha = 0.4
        self._work_ewma = (work_cycles if self._work_ewma is None
                           else alpha * work_cycles + (1 - alpha) * self._work_ewma)
        self._interval_ewma = (interval if self._interval_ewma is None
                               else alpha * interval + (1 - alpha) * self._interval_ewma)
        littles = self.executor.little_cores
        if not littles:
            return
        required = (self.config.pacer_headroom * self._work_ewma
                    / (len(littles) * self._interval_ewma))
        for core in littles:
            core.set_frequency(required)
        self.stats.pacer_freq_history.append(littles[0].freq_hz)

"""Parallaft runtime configuration.

Defaults follow the paper: 5-billion-cycle slicing period (§4.1),
branch-counter execution points with a skid buffer (§4.2), a 1.1x checker
instruction timeout (§4.2.2), dirty-page hashing with XXH3-64 (§4.4), and
the checker scheduler/pacer enabled (§4.5).

``RuntimeMode.RAFT`` reconfigures the same runtime the way the paper models
RAFT (§5.1): no periodic slicing (single segment), checkers on big cores,
no end-of-segment state comparison or dirty-page tracking.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import RuntimeConfigError
from repro.common.units import BILLION


class RuntimeMode(enum.Enum):
    PARALLAFT = "parallaft"
    RAFT = "raft"
    #: Elzar-style triple modular redundancy: the main plus two checker
    #: replicas per segment, a 3-way majority vote at segment boundaries
    #: and forward recovery (adopt the majority state, never roll back).
    TMR = "tmr"


class DirtyPageBackend(enum.Enum):
    #: x86_64: soft-dirty PTE bits, cleared at segment start (paper §4.4).
    SOFT_DIRTY = "soft_dirty"
    #: AArch64: PAGEMAP_SCAN map counting — a page mapped exactly once is
    #: private, hence modified or new (paper §4.4).
    MAP_COUNT = "map_count"


class ExecPointCounter(enum.Enum):
    #: Deterministic near-branch counter (the paper's choice, §4.2.1).
    BRANCHES = "branches"
    #: Raw instruction counter — overcounts nondeterministically; provided
    #: for the ablation that shows why branch counters are required.
    INSTRUCTIONS = "instructions"


class ComparisonStrategy(enum.Enum):
    #: Hash only dirty pages with the injected hasher (paper §4.4).
    DIRTY_HASH = "dirty_hash"
    #: Byte-compare every mapped page — the slow strawman for the ablation.
    FULL_MEMORY = "full_memory"


@dataclass
class ParallaftConfig:
    mode: RuntimeMode = RuntimeMode.PARALLAFT

    #: Slicing period in *hardware* units; interpreted per ``slicing_unit``.
    slicing_period: float = 5 * BILLION
    #: 'cycles' (Apple) or 'instructions' (Intel, paper footnote 14).
    #: None = use the platform's default.
    slicing_unit: Optional[str] = None

    #: Branch-count margin the replay stops short by, to absorb
    #: perf-counter skid (paper §4.2.2).  In simulated branches.
    skid_buffer_branches: int = 64
    #: Checker is killed after main_instructions * this scale (paper §4.2.2).
    checker_timeout_scale: float = 1.1
    exec_point_counter: ExecPointCounter = ExecPointCounter.BRANCHES

    #: None = pick by platform arch (x86 soft-dirty, aarch64 map-count).
    dirty_page_backend: Optional[DirtyPageBackend] = None
    comparison: ComparisonStrategy = ComparisonStrategy.DIRTY_HASH
    #: Compare registers+memory at segment ends (off in RAFT mode).
    compare_state: bool = True
    #: MEEK-style tunable checker split (MEEK, PAPERS.md): the fraction
    #: of the dirty-page union checked *early*, when a replica arrives at
    #: its end point (PC + registers + the first ``ceil(split * n)``
    #: pages of the sorted union); the boundary compare covers only the
    #: remaining ``1 - split`` fraction.  Work is divided, never
    #: duplicated — total pages hashed per boundary is invariant in the
    #: knob.  0.0 (default) keeps the whole check at the boundary.
    meek_split: float = 0.0

    #: Checker scheduler/pacer (paper §4.5).
    enable_migration: bool = True
    enable_dvfs_pacer: bool = True
    #: Pacer safety margin over the estimated required little frequency.
    pacer_headroom: float = 1.2
    #: Where checkers run by default: 'little' (Parallaft) or 'big' (RAFT).
    checker_cluster: str = "little"

    #: Upper bound on concurrently live segments (error-detection latency
    #: bound, §3.4).  The main stalls when it is reached.
    max_live_segments: int = 12

    #: Stop the whole application when an error is detected (§4.4).
    stop_on_error: bool = True

    # -- extensions beyond the paper's prototype (its stated future work) --

    #: Table 2 "error recovery": retry a failed segment check with a fresh
    #: checker forked from the (retained) segment-start state.  A transient
    #: fault in the *checker* disappears on retry; a persistent mismatch
    #: implicates the main and is reported as an error.
    retry_failed_checkers: bool = False
    max_checker_retries: int = 1

    #: Table 2 "error recovery", part two: when a failed check persists
    #: across the diagnostic re-check (implicating the *main*), roll the
    #: main back to the last verified checkpoint and re-execute the
    #: segment instead of stopping.  Console output is buffered per
    #: segment so rolled-back output never escapes the sphere of
    #: replication.
    enable_recovery: bool = False
    #: Total rollbacks allowed across the whole run before giving up.
    max_rollbacks: int = 8
    #: Consecutive re-executions of the *same* region before giving up
    #: (a persistent fault re-detected every time).
    max_segment_reexecutions: int = 3
    #: Watchdog on a re-executed segment: abort recovery if the new main
    #: has not reached the next boundary within
    #: ``original_segment_instructions * this scale``.
    recovery_watchdog_scale: float = 4.0
    #: After each consecutive rollback the slicing period is halved
    #: (period / 2**streak) to shrink the re-exposed window, down to at
    #: most this many halvings.
    recovery_shrink_limit: int = 4

    #: TMR only: forward recoveries (main outvoted, majority state
    #: adopted) allowed across the run before the runtime fail-stops —
    #: the analogue of ``max_rollbacks`` for a mode that never rolls
    #: back.
    max_forward_recoveries: int = 8

    #: Table 2 "error containment in SoR": hold the main at every
    #: globally-effectful syscall until all previous segments have been
    #: verified, so no erroneous data ever escapes.  Expensive (the paper
    #: §3.4 rejects it for exactly that reason — the ablation bench
    #: measures the cost).
    error_containment: bool = False

    #: Mask vDSO/rseq fast paths so the program falls back to replayable
    #: syscalls (paper §4.3.5).  Informational in this substrate (programs
    #: always use real syscalls), but kept for stats parity.
    mask_vdso: bool = True
    mask_rseq: bool = True

    # -- integrity hardening against *infrastructure* faults ---------------
    # The detection machinery itself (dirty tracker, R/R log, retained
    # checkpoints, comparator digests) is a single point of failure the
    # paper assumes perfect.  These knobs defend it; their value is
    # measured as SDC-escape-rate reduction by ``repro.faults.infra``.

    #: Stamp every R/R record with a monotonic sequence number and a
    #: content checksum at append time, verified before the replay cursor
    #: consumes it.  Failure reports ``log_integrity`` — a checker-side
    #: transient (the log copy is suspect, not the main), retried from the
    #: retained checkpoint and never rolled back.
    log_checksums: bool = False
    #: Digest the retained recovery checkpoint (registers + all mapped
    #: pages) at fork time and re-verify before the checkpoint is ever
    #: trusted — on the error path before retry/rollback.  A mismatch
    #: means saved state is untrusted: fail-stop with ``infra_integrity``.
    checkpoint_digests: bool = False
    #: At each passing segment check, byte-audit up to this many
    #: supposedly-clean pages (frame-divergent between checker and end
    #: checkpoint yet absent from the dirty union) to catch dirty-tracker
    #: under-reporting.  0 disables the audit.
    clean_page_audit: int = 0
    #: Run a second, independent hash path over the compared pages; if the
    #: two paths disagree on a verdict the comparator itself is faulty —
    #: reported as ``infra_integrity`` (fail-stop), never as an
    #: application mismatch.
    redundant_compare: bool = False

    # -- memory pressure (finite frame pool, ``repro.core.pressure``) ------
    # The real runtime's checkpoints compete for finite RAM (paper §4.3,
    # Fig. 8); these knobs bound the modelled frame pool and control the
    # graceful-degradation ladder that keeps the run alive under pressure.

    #: Frame-pool byte budget; None = unbounded (the historical default).
    #: ``REPRO_MEM_BUDGET`` is resolved when a runtime is assembled, not
    #: here, so a bare config object is environment-independent.
    mem_budget_bytes: Optional[int] = None
    #: Pool utilisation at which stage 1 (main backpressure) engages; the
    #: stall releases once utilisation falls back below this mark.
    pressure_low_watermark: float = 0.80
    #: Utilisation at which the controller escalates (shed checkers, evict
    #: checkpoints, adapt the slicing period), one action per poll.
    pressure_high_watermark: float = 0.95
    #: Adaptive slicing targets one segment's dirty footprint at about
    #: this fraction of the budget.
    pressure_segment_budget_fraction: float = 0.10
    #: Floor on the adapted period, as a fraction of ``slicing_period``.
    pressure_min_period_scale: float = 1.0 / 16.0
    #: Times a single segment's checker may be shed and re-queued before
    #: the controller refuses to sacrifice it again.
    pressure_max_segment_sheds: int = 3

    #: Structured event tracing (``repro.trace``): every lifecycle event
    #: lands in a bounded ring buffer, exportable as Chrome trace_event
    #: JSON and replayable through the offline invariant checker.
    enable_trace: bool = True
    #: Ring-buffer capacity in events; older events are dropped (and
    #: counted) once full, so tracing cost is O(1) in run length.
    trace_capacity: int = 65536

    #: Metric registry + phase-attribution profiler (``repro.metrics``):
    #: every charged cycle is attributed to a runtime phase and the
    #: cycle-conservation invariant is enforced on traced runs.
    enable_metrics: bool = True
    #: Virtual-time gauge sampling period in seconds; None disables the
    #: sampler (``Parallaft.enable_metrics_sampling`` can still arm it).
    metrics_sample_interval: Optional[float] = None

    def validate(self) -> None:
        if self.slicing_period <= 0:
            raise RuntimeConfigError("slicing_period must be positive")
        if self.skid_buffer_branches < 0:
            raise RuntimeConfigError("skid_buffer_branches must be >= 0")
        if self.checker_timeout_scale <= 1.0:
            raise RuntimeConfigError(
                "checker_timeout_scale must exceed 1.0 (counter overcount)")
        if self.checker_cluster not in ("little", "big"):
            raise RuntimeConfigError("checker_cluster must be little or big")
        if self.max_live_segments < 1:
            raise RuntimeConfigError("max_live_segments must be >= 1")
        if self.slicing_unit not in (None, "cycles", "instructions"):
            raise RuntimeConfigError("slicing_unit must be cycles or "
                                     "instructions")
        if self.max_checker_retries < 0:
            raise RuntimeConfigError("max_checker_retries must be >= 0")
        if self.max_rollbacks < 0:
            raise RuntimeConfigError("max_rollbacks must be >= 0")
        if self.max_segment_reexecutions < 1:
            raise RuntimeConfigError("max_segment_reexecutions must be >= 1")
        if self.recovery_watchdog_scale <= 1.0:
            raise RuntimeConfigError(
                "recovery_watchdog_scale must exceed 1.0")
        if self.recovery_shrink_limit < 0:
            raise RuntimeConfigError("recovery_shrink_limit must be >= 0")
        if self.enable_recovery and self.mode is RuntimeMode.RAFT:
            raise RuntimeConfigError(
                "recovery requires segment checkpoints; RAFT mode has none")
        if self.enable_recovery and not self.compare_state:
            raise RuntimeConfigError(
                "recovery requires state comparison (compare_state)")
        if self.mode is RuntimeMode.TMR:
            if not self.compare_state:
                raise RuntimeConfigError(
                    "TMR votes over boundary state; compare_state must "
                    "stay enabled")
            if self.enable_recovery:
                raise RuntimeConfigError(
                    "TMR recovers forward (majority adoption); rollback "
                    "recovery (enable_recovery) is incompatible")
            if self.retry_failed_checkers:
                raise RuntimeConfigError(
                    "TMR absorbs single-replica faults by outvoting them; "
                    "retry_failed_checkers is incompatible")
        if not 0.0 <= self.meek_split <= 1.0:
            raise RuntimeConfigError("meek_split must be in [0, 1]")
        if self.meek_split > 0.0 and not self.compare_state:
            raise RuntimeConfigError(
                "meek_split divides the state check; it needs "
                "compare_state enabled")
        if self.max_forward_recoveries < 0:
            raise RuntimeConfigError("max_forward_recoveries must be >= 0")
        if self.trace_capacity < 1:
            raise RuntimeConfigError("trace_capacity must be >= 1")
        if self.metrics_sample_interval is not None \
                and self.metrics_sample_interval <= 0:
            raise RuntimeConfigError(
                "metrics_sample_interval must be positive")
        if self.clean_page_audit < 0:
            raise RuntimeConfigError("clean_page_audit must be >= 0")
        if self.mem_budget_bytes is not None and self.mem_budget_bytes <= 0:
            raise RuntimeConfigError("mem_budget_bytes must be positive")
        if not 0.0 < self.pressure_low_watermark \
                < self.pressure_high_watermark <= 1.0:
            raise RuntimeConfigError(
                "watermarks must satisfy 0 < low < high <= 1")
        if not 0.0 < self.pressure_segment_budget_fraction <= 1.0:
            raise RuntimeConfigError(
                "pressure_segment_budget_fraction must be in (0, 1]")
        if not 0.0 < self.pressure_min_period_scale <= 1.0:
            raise RuntimeConfigError(
                "pressure_min_period_scale must be in (0, 1]")
        if self.pressure_max_segment_sheds < 0:
            raise RuntimeConfigError(
                "pressure_max_segment_sheds must be >= 0")

    @property
    def retains_recovery_checkpoint(self) -> bool:
        """Whether segment-start checkpoints outlive checker placement
        (needed by the retry and rollback extensions, and by the pressure
        controller so shed checkers can be re-spawned — RAFT mode has no
        per-segment checkpoints, so a budget alone never retains there).
        Only an explicit ``mem_budget_bytes`` counts: the runtime copies
        the ``REPRO_MEM_BUDGET`` fallback into its own config at assembly
        time, so a bare config object never retains."""
        return (self.retry_failed_checkers or self.enable_recovery
                or (self.mem_budget_bytes is not None
                    and self.mode is not RuntimeMode.RAFT))

    def detection_mode(self):
        """Resolve this config's :class:`~repro.modes.DetectionMode`
        policy object from the mode registry (lazy import: the registry
        imports this module for the mode factories)."""
        from repro.modes import get_mode
        return get_mode(self.mode.value)

    @classmethod
    def raft(cls) -> "ParallaftConfig":
        """The paper's RAFT model (§5.1): one segment, big-core checker,
        no state comparison."""
        return cls(
            mode=RuntimeMode.RAFT,
            slicing_period=float("inf"),
            compare_state=False,
            enable_migration=False,
            enable_dvfs_pacer=False,
            checker_cluster="big",
        )

    @classmethod
    def tmr(cls) -> "ParallaftConfig":
        """Elzar-style TMR (PAPERS.md): the Parallaft segment pipeline
        with two checker replicas per segment, a 3-way majority vote at
        each boundary, and forward recovery instead of rollback."""
        return cls(mode=RuntimeMode.TMR)

"""Runtime statistics, mirroring the artifact's output keys (appendix A.7):
``timing.all_wall_time``, ``timing.main_wall_time``,
``timing.main_user_time``/``main_sys_time``, ``counter.checkpoint_count``,
``fixed_interval_slicer.nr_slices``, plus energy and error reporting.

``RunStats`` is a thin view over the metric registry: the exported key
of every scalar is defined exactly once, in :data:`STAT_SCHEMA`, and
both ``to_dict`` and the registry mirror are derived from it.  Binding a
:class:`~repro.metrics.MetricRegistry` (``bind_registry``) makes every
subsequent field write also land in the registry under its dotted key,
so exporters see the same numbers the dict dump reports — without
hand-maintaining two field enumerations that can drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.metrics import MetricRegistry


@dataclass
class DetectedError:
    """One detected divergence."""

    kind: str                 # 'state_mismatch' | 'syscall_divergence' |
    #                           'exception' | 'timeout' | 'exec_point_overrun'
    segment_index: int
    detail: str = ""
    time: float = 0.0

    def __repr__(self) -> str:
        return f"DetectedError({self.kind}, segment={self.segment_index})"


class StatField(NamedTuple):
    """One exported scalar: dataclass attribute -> artifact dict key."""

    attr: str
    key: str
    #: 'counter' mirrors into a registry counter; 'gauge' into a gauge;
    #: 'derived' is computed (a property) and never mirrored.
    kind: str = "gauge"


#: The single definition of every scalar ``to_dict`` exports, in the
#: artifact's key order.  ``errors`` and ``exit_code`` are appended by
#: ``to_dict`` itself (they are not scalars).
STAT_SCHEMA: Tuple[StatField, ...] = (
    StatField("all_wall_time", "timing.all_wall_time"),
    StatField("main_wall_time", "timing.main_wall_time"),
    StatField("main_user_time", "timing.main_user_time"),
    StatField("main_sys_time", "timing.main_sys_time"),
    StatField("checker_user_time", "timing.checker_user_time"),
    StatField("checker_sys_time", "timing.checker_sys_time"),
    StatField("checkpoint_count", "counter.checkpoint_count", "counter"),
    StatField("nr_slices", "fixed_interval_slicer.nr_slices", "counter"),
    StatField("syscalls_recorded", "counter.syscalls_recorded", "counter"),
    StatField("syscalls_replayed", "counter.syscalls_replayed", "counter"),
    StatField("signals_recorded", "counter.signals_recorded", "counter"),
    StatField("nondet_recorded", "counter.nondet_recorded", "counter"),
    StatField("bytes_recorded", "counter.bytes_recorded", "counter"),
    StatField("segments_checked", "counter.segments_checked", "counter"),
    StatField("checker_retries", "counter.checker_retries", "counter"),
    StatField("checker_migrations", "counter.checker_migrations", "counter"),
    StatField("checkers_finished_on_big",
              "counter.checkers_finished_on_big", "counter"),
    StatField("mmap_splits", "counter.mmap_splits", "counter"),
    StatField("recovery_rollbacks", "counter.recovery.rollbacks", "counter"),
    StatField("recovery_retries", "counter.recovery.retries", "counter"),
    StatField("recovery_wasted_cycles",
              "counter.recovery.wasted_cycles", "counter"),
    StatField("tmr_votes", "counter.tmr.votes", "counter"),
    StatField("tmr_outvoted", "counter.tmr.outvoted", "counter"),
    StatField("tmr_forward_recoveries",
              "counter.tmr.forward_recoveries", "counter"),
    StatField("meek_early_checks", "counter.meek.early_checks", "counter"),
    StatField("meek_early_detections",
              "counter.meek.early_detections", "counter"),
    StatField("integrity_checks", "counter.integrity.checks", "counter"),
    StatField("integrity_failures", "counter.integrity.failures", "counter"),
    StatField("pressure_stalls", "counter.pressure.stalls", "counter"),
    StatField("pressure_sheds", "counter.pressure.sheds", "counter"),
    StatField("pressure_evictions", "counter.pressure.evictions", "counter"),
    StatField("pressure_adaptations",
              "counter.pressure.adaptations", "counter"),
    StatField("checker_ooms", "counter.pressure.checker_ooms", "counter"),
    StatField("oom_kills", "counter.oom_kills", "counter"),
    StatField("oom_killed", "oom_killed"),
    StatField("peak_resident_bytes", "memory.peak_resident_bytes"),
    StatField("checker_cycles_big", "work.checker_cycles_big"),
    StatField("checker_cycles_little", "work.checker_cycles_little"),
    StatField("big_core_work_fraction",
              "work.big_core_work_fraction", "derived"),
    StatField("energy_joules", "hwmon.total_energy"),
)

_MIRRORED = {f.attr: f for f in STAT_SCHEMA if f.kind != "derived"}


@dataclass
class RunStats:
    """Everything a Parallaft/RAFT run reports."""

    # timing.* (virtual seconds)
    all_wall_time: float = 0.0        # includes waiting for last checkers
    main_wall_time: float = 0.0       # main process only
    main_user_time: float = 0.0
    main_sys_time: float = 0.0
    checker_user_time: float = 0.0
    checker_sys_time: float = 0.0

    # counter.*
    checkpoint_count: int = 0         # includes mmap-split checkpoints
    nr_slices: int = 0                # fixed-interval slicer boundaries
    syscalls_recorded: int = 0
    syscalls_replayed: int = 0
    signals_recorded: int = 0
    nondet_recorded: int = 0
    bytes_recorded: int = 0
    segments_checked: int = 0
    checker_retries: int = 0
    # counter.recovery.* — checkpoint-rollback recovery extension
    recovery_rollbacks: int = 0
    recovery_retries: int = 0         # diagnostic re-checks run by recovery
    recovery_wasted_cycles: float = 0.0   # discarded main+checker work
    # counter.tmr.* — majority voting (repro.modes.tmr): boundary votes
    # run, voters outvoted (main or replica), forward recoveries applied
    tmr_votes: int = 0
    tmr_outvoted: int = 0
    tmr_forward_recoveries: int = 0
    # counter.meek.* — split-check early verdicts taken at replica arrival
    meek_early_checks: int = 0
    meek_early_detections: int = 0
    # counter.integrity.* — hardening checks run/failed (log checksums,
    # checkpoint digests, clean-page audits, redundant compare verdicts)
    integrity_checks: int = 0
    integrity_failures: int = 0
    checker_migrations: int = 0
    checkers_finished_on_big: int = 0
    mmap_splits: int = 0
    # counter.pressure.* — memory-pressure degradation ladder actions
    pressure_stalls: int = 0          # stage 1: backpressure episodes
    pressure_sheds: int = 0           # stage 2: checkers torn down/re-queued
    pressure_evictions: int = 0       # stage 3: recovery checkpoints evicted
    pressure_adaptations: int = 0     # stage 4: slicing-period shortenings
    checker_ooms: int = 0             # checkers sacrificed by the OOM path
    oom_kills: int = 0                # kernel OOM kills (any process)
    # whether the *main* process was OOM-killed (distinct exit class)
    oom_killed: bool = False
    # high-water mark of unique live frame bytes in the pool
    peak_resident_bytes: float = 0.0

    # hwmon.* (joules)
    energy_joules: float = 0.0

    # memory (bytes, time-averaged by the sampler)
    pss_samples: List[float] = field(default_factory=list)

    # pacer telemetry
    pacer_freq_history: List[float] = field(default_factory=list)

    # work split: user cycles checkers spent on big vs little cores
    checker_cycles_little: float = 0.0
    checker_cycles_big: float = 0.0

    errors: List[DetectedError] = field(default_factory=list)
    exit_code: Optional[int] = None
    stdout: str = ""
    stderr: str = ""

    # -- registry mirror ---------------------------------------------------

    def bind_registry(self, registry: MetricRegistry) -> None:
        """Mirror every schema field into ``registry`` — current values
        now, every assignment from here on.  ``to_dict`` keeps reading
        the dataclass fields directly, so binding can never change its
        output."""
        self.__dict__["_registry"] = registry
        for f in STAT_SCHEMA:
            if f.kind != "derived":
                self._mirror(f, getattr(self, f.attr))

    def _mirror(self, f: StatField, value) -> None:
        registry = self.__dict__.get("_registry")
        if registry is None:
            return
        registry.gauge(f.key).set(float(value))

    def __setattr__(self, name: str, value) -> None:
        object.__setattr__(self, name, value)
        f = _MIRRORED.get(name)
        if f is not None:
            self._mirror(f, value)

    @property
    def error_detected(self) -> bool:
        return bool(self.errors)

    @property
    def big_core_work_fraction(self) -> float:
        """Fraction of checker work done on big cores (paper §5.2.1 reports
        41.7%/38.0%/50.0% for mcf/milc/lbm)."""
        total = self.checker_cycles_little + self.checker_cycles_big
        return self.checker_cycles_big / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Artifact-style flat key dump (appendix A.7).

        Every public counter appears here — harness reports and campaign
        artifacts serialize this dict, so a field missing from it is
        silently invisible downstream (tests/test_core_units.py round-trips
        the full set).  Keys and order come from :data:`STAT_SCHEMA`.
        """
        out: Dict[str, object] = {
            f.key: getattr(self, f.attr) for f in STAT_SCHEMA}
        out["errors"] = [f"{e.kind}@{e.segment_index}" for e in self.errors]
        out["exit_code"] = self.exit_code
        return out

"""Runtime statistics, mirroring the artifact's output keys (appendix A.7):
``timing.all_wall_time``, ``timing.main_wall_time``,
``timing.main_user_time``/``main_sys_time``, ``counter.checkpoint_count``,
``fixed_interval_slicer.nr_slices``, plus energy and error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class DetectedError:
    """One detected divergence."""

    kind: str                 # 'state_mismatch' | 'syscall_divergence' |
    #                           'exception' | 'timeout' | 'exec_point_overrun'
    segment_index: int
    detail: str = ""
    time: float = 0.0

    def __repr__(self) -> str:
        return f"DetectedError({self.kind}, segment={self.segment_index})"


@dataclass
class RunStats:
    """Everything a Parallaft/RAFT run reports."""

    # timing.* (virtual seconds)
    all_wall_time: float = 0.0        # includes waiting for last checkers
    main_wall_time: float = 0.0       # main process only
    main_user_time: float = 0.0
    main_sys_time: float = 0.0
    checker_user_time: float = 0.0
    checker_sys_time: float = 0.0

    # counter.*
    checkpoint_count: int = 0         # includes mmap-split checkpoints
    nr_slices: int = 0                # fixed-interval slicer boundaries
    syscalls_recorded: int = 0
    syscalls_replayed: int = 0
    signals_recorded: int = 0
    nondet_recorded: int = 0
    bytes_recorded: int = 0
    segments_checked: int = 0
    checker_retries: int = 0
    # counter.recovery.* — checkpoint-rollback recovery extension
    recovery_rollbacks: int = 0
    recovery_retries: int = 0         # diagnostic re-checks run by recovery
    recovery_wasted_cycles: float = 0.0   # discarded main+checker work
    # counter.integrity.* — hardening checks run/failed (log checksums,
    # checkpoint digests, clean-page audits, redundant compare verdicts)
    integrity_checks: int = 0
    integrity_failures: int = 0
    checker_migrations: int = 0
    checkers_finished_on_big: int = 0
    mmap_splits: int = 0
    # counter.pressure.* — memory-pressure degradation ladder actions
    pressure_stalls: int = 0          # stage 1: backpressure episodes
    pressure_sheds: int = 0           # stage 2: checkers torn down/re-queued
    pressure_evictions: int = 0       # stage 3: recovery checkpoints evicted
    pressure_adaptations: int = 0     # stage 4: slicing-period shortenings
    checker_ooms: int = 0             # checkers sacrificed by the OOM path
    oom_kills: int = 0                # kernel OOM kills (any process)
    # whether the *main* process was OOM-killed (distinct exit class)
    oom_killed: bool = False
    # high-water mark of unique live frame bytes in the pool
    peak_resident_bytes: float = 0.0

    # hwmon.* (joules)
    energy_joules: float = 0.0

    # memory (bytes, time-averaged by the sampler)
    pss_samples: List[float] = field(default_factory=list)

    # pacer telemetry
    pacer_freq_history: List[float] = field(default_factory=list)

    # work split: user cycles checkers spent on big vs little cores
    checker_cycles_little: float = 0.0
    checker_cycles_big: float = 0.0

    errors: List[DetectedError] = field(default_factory=list)
    exit_code: Optional[int] = None
    stdout: str = ""
    stderr: str = ""

    @property
    def error_detected(self) -> bool:
        return bool(self.errors)

    @property
    def big_core_work_fraction(self) -> float:
        """Fraction of checker work done on big cores (paper §5.2.1 reports
        41.7%/38.0%/50.0% for mcf/milc/lbm)."""
        total = self.checker_cycles_little + self.checker_cycles_big
        return self.checker_cycles_big / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Artifact-style flat key dump (appendix A.7).

        Every public counter appears here — harness reports and campaign
        artifacts serialize this dict, so a field missing from it is
        silently invisible downstream (tests/test_core_units.py round-trips
        the full set).
        """
        return {
            "timing.all_wall_time": self.all_wall_time,
            "timing.main_wall_time": self.main_wall_time,
            "timing.main_user_time": self.main_user_time,
            "timing.main_sys_time": self.main_sys_time,
            "timing.checker_user_time": self.checker_user_time,
            "timing.checker_sys_time": self.checker_sys_time,
            "counter.checkpoint_count": self.checkpoint_count,
            "fixed_interval_slicer.nr_slices": self.nr_slices,
            "counter.syscalls_recorded": self.syscalls_recorded,
            "counter.syscalls_replayed": self.syscalls_replayed,
            "counter.signals_recorded": self.signals_recorded,
            "counter.nondet_recorded": self.nondet_recorded,
            "counter.bytes_recorded": self.bytes_recorded,
            "counter.segments_checked": self.segments_checked,
            "counter.checker_retries": self.checker_retries,
            "counter.checker_migrations": self.checker_migrations,
            "counter.checkers_finished_on_big": self.checkers_finished_on_big,
            "counter.mmap_splits": self.mmap_splits,
            "counter.recovery.rollbacks": self.recovery_rollbacks,
            "counter.recovery.retries": self.recovery_retries,
            "counter.recovery.wasted_cycles": self.recovery_wasted_cycles,
            "counter.integrity.checks": self.integrity_checks,
            "counter.integrity.failures": self.integrity_failures,
            "counter.pressure.stalls": self.pressure_stalls,
            "counter.pressure.sheds": self.pressure_sheds,
            "counter.pressure.evictions": self.pressure_evictions,
            "counter.pressure.adaptations": self.pressure_adaptations,
            "counter.pressure.checker_ooms": self.checker_ooms,
            "counter.oom_kills": self.oom_kills,
            "oom_killed": self.oom_killed,
            "memory.peak_resident_bytes": self.peak_resident_bytes,
            "work.checker_cycles_big": self.checker_cycles_big,
            "work.checker_cycles_little": self.checker_cycles_little,
            "work.big_core_work_fraction": self.big_core_work_fraction,
            "hwmon.total_energy": self.energy_joules,
            "errors": [f"{e.kind}@{e.segment_index}" for e in self.errors],
            "exit_code": self.exit_code,
        }

"""Segment lifecycle (paper §3.1, figure 1(b)).

The main execution is sliced into segments.  For segment *k*:

1. At boundary *k* (segment start) the coordinator forks a paused *checker*
   process from the main — the duplicated start state.
2. While the main executes segment *k*, its OS interactions are recorded
   into the segment's R/R log.
3. At boundary *k+1* the coordinator forks the *end checkpoint*, records the
   end execution point, and the segment becomes READY: its checker is
   released onto a little core.
4. The checker replays to the end point and its state is compared against
   the end checkpoint; the segment becomes CHECKED (or the error is
   reported).

Correctness of the whole run follows by induction over checked segments
(paper §3.1).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.exec_point import ExecPoint, ExecPointReplayer, ReplayStop
from repro.core.rr_log import RrLog
from repro.kernel.process import Process


class SegmentStatus(enum.Enum):
    RECORDING = "recording"    # main is executing this segment
    READY = "ready"            # end point known; checker can run
    CHECKING = "checking"      # checker running (or queued for a core)
    CHECKED = "checked"        # comparison succeeded
    FAILED = "failed"          # divergence detected
    ROLLED_BACK = "rolled_back"  # discarded by recovery; main re-executes


class Segment:
    def __init__(self, index: int, checker: Process,
                 start_branches: int, start_instructions: int,
                 start_cycles: float, start_time: float):
        self.index = index
        #: Paused fork of the main at segment start; released when READY.
        self.checker: Optional[Process] = checker
        #: Pristine fork of the main at segment end (comparison target).
        self.end_checkpoint: Optional[Process] = None
        #: True when end_checkpoint is the main process itself (final
        #: segment compares against the exited main, which is not reaped).
        self.end_is_main = False
        self.log = RrLog()
        #: The checker's replay position in the log.
        self.cursor = self.log.cursor()
        self.status = SegmentStatus.RECORDING

        # Counter bases at segment start (from the main's CPU).
        self.start_branches = start_branches
        self.start_instructions = start_instructions
        self.start_cycles = start_cycles
        self.start_time = start_time

        # Filled at finalize.
        self.end_point: Optional[ExecPoint] = None
        self.main_instructions = 0          # relative, for the 1.1x timeout
        self.main_dirty_vpns: List[int] = []
        self.ready_time: Optional[float] = None

        # Signal replay stops accumulated during recording.
        self.signal_stops: List[ReplayStop] = []

        # Recovery support (retry_failed_checkers / enable_recovery): a
        # pristine fork of the segment-start state, retained so a failed
        # check can be retried — or, with recovery, promoted to become the
        # new main after a rollback.
        self.recovery_checkpoint: Optional[Process] = None
        #: Integrity digest of the recovery checkpoint taken at fork time
        #: (``checkpoint_digests``); re-verified before the checkpoint is
        #: trusted for a retry or promoted by a rollback.
        self.checkpoint_digest: Optional[int] = None
        self.retries = 0
        #: Set when the pressure controller evicted recovery_checkpoint
        #: (stage 3): any later retry/rollback wanting it must refuse with
        #: a typed ``checkpoint_evicted`` error instead of promoting freed
        #: state.
        self.checkpoint_evicted = False
        #: Times this segment's in-flight checker was shed by the pressure
        #: controller (stage 2) and the segment re-queued.
        self.sheds = 0
        #: Console/stderr buffer lengths at segment start, so a rollback
        #: can truncate output the discarded execution produced.
        self.console_mark = 0
        self.stderr_mark = 0

        # Filled while checking.
        self.replayer: Optional[ExecPointReplayer] = None
        self.check_started_time: Optional[float] = None
        self.check_finished_time: Optional[float] = None
        self.checker_was_migrated = False
        self.checker_user_cycles_at_start = 0.0
        #: Guard against re-entrant retirement: retiring kills the checker,
        #: whose exit hook would otherwise retire the segment again
        #: (double-counting checker time and pacer updates).
        self.retired = False

    def __repr__(self) -> str:
        return f"Segment({self.index}, {self.status.value})"

    @property
    def live(self) -> bool:
        return self.status in (SegmentStatus.RECORDING, SegmentStatus.READY,
                               SegmentStatus.CHECKING)

"""Segment lifecycle (paper §3.1, figure 1(b)).

The main execution is sliced into segments.  For segment *k*:

1. At boundary *k* (segment start) the coordinator forks a paused *checker*
   process from the main — the duplicated start state.
2. While the main executes segment *k*, its OS interactions are recorded
   into the segment's R/R log.
3. At boundary *k+1* the coordinator forks the *end checkpoint*, records the
   end execution point, and the segment becomes READY: its checker is
   released onto a little core.
4. The checker replays to the end point and its state is compared against
   the end checkpoint; the segment becomes CHECKED (or the error is
   reported).

Correctness of the whole run follows by induction over checked segments
(paper §3.1).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.exec_point import ExecPoint, ExecPointReplayer, ReplayStop
from repro.core.rr_log import RrLog
from repro.kernel.process import Process


class SegmentStatus(enum.Enum):
    RECORDING = "recording"    # main is executing this segment
    READY = "ready"            # end point known; checker can run
    CHECKING = "checking"      # checker running (or queued for a core)
    CHECKED = "checked"        # comparison succeeded
    FAILED = "failed"          # divergence detected
    ROLLED_BACK = "rolled_back"  # discarded by recovery; main re-executes


class Replica:
    """One checker replica of a segment: a paused fork of the main at
    segment start plus its private replay state.  Parallaft and RAFT run
    one replica per segment; TMR runs two (the main is the third voter).
    Each replica consumes the shared segment log through its *own*
    cursor and replays to the end point through its own replayer, so
    replicas progress independently on their cores."""

    __slots__ = ("process", "cursor", "replayer", "reached_end",
                 "early_result", "early_vpns")

    def __init__(self, process: Process, cursor):
        self.process = process
        self.cursor = cursor
        self.replayer: Optional[ExecPointReplayer] = None
        #: True once this replica reached the segment end point (a vote
        #: waits for every live replica to arrive).
        self.reached_end = False
        #: MEEK early-check verdict (a ``ComparisonResult``) taken on
        #: arrival when ``meek_split > 0``; None when no early check ran.
        self.early_result = None
        #: The dirty vpns the early check already covered — the boundary
        #: compare hashes only the remainder (work divided, not
        #: duplicated).
        self.early_vpns = ()

    def __repr__(self) -> str:
        pid = self.process.pid if self.process is not None else None
        return f"Replica(pid={pid}, reached_end={self.reached_end})"


class Segment:
    def __init__(self, index: int, checker: Process,
                 start_branches: int, start_instructions: int,
                 start_cycles: float, start_time: float):
        self.index = index
        #: Pristine fork of the main at segment end (comparison target).
        self.end_checkpoint: Optional[Process] = None
        #: True when end_checkpoint is the main process itself (final
        #: segment compares against the exited main, which is not reaped).
        self.end_is_main = False
        self.log = RrLog()
        #: Checker replicas (paused forks of the segment-start state).
        #: ``checker``/``cursor``/``replayer`` below view replica 0, the
        #: only one in single-replica modes.
        self.replicas: List[Replica] = []
        self.checker = checker
        self.status = SegmentStatus.RECORDING

        # Counter bases at segment start (from the main's CPU).
        self.start_branches = start_branches
        self.start_instructions = start_instructions
        self.start_cycles = start_cycles
        self.start_time = start_time

        # Filled at finalize.
        self.end_point: Optional[ExecPoint] = None
        self.main_instructions = 0          # relative, for the 1.1x timeout
        self.main_dirty_vpns: List[int] = []
        self.ready_time: Optional[float] = None

        # Signal replay stops accumulated during recording.
        self.signal_stops: List[ReplayStop] = []

        # Recovery support (retry_failed_checkers / enable_recovery): a
        # pristine fork of the segment-start state, retained so a failed
        # check can be retried — or, with recovery, promoted to become the
        # new main after a rollback.
        self.recovery_checkpoint: Optional[Process] = None
        #: Integrity digest of the recovery checkpoint taken at fork time
        #: (``checkpoint_digests``); re-verified before the checkpoint is
        #: trusted for a retry or promoted by a rollback.
        self.checkpoint_digest: Optional[int] = None
        self.retries = 0
        #: Set when the pressure controller evicted recovery_checkpoint
        #: (stage 3): any later retry/rollback wanting it must refuse with
        #: a typed ``checkpoint_evicted`` error instead of promoting freed
        #: state.
        self.checkpoint_evicted = False
        #: Times this segment's in-flight checker was shed by the pressure
        #: controller (stage 2) and the segment re-queued.
        self.sheds = 0
        #: Console/stderr buffer lengths at segment start, so a rollback
        #: can truncate output the discarded execution produced.
        self.console_mark = 0
        self.stderr_mark = 0

        # Filled while checking.
        self.check_started_time: Optional[float] = None
        self.check_finished_time: Optional[float] = None
        self.checker_was_migrated = False
        self.checker_user_cycles_at_start = 0.0
        #: Guard against re-entrant retirement: retiring kills the checker,
        #: whose exit hook would otherwise retire the segment again
        #: (double-counting checker time and pacer updates).
        self.retired = False

    def __repr__(self) -> str:
        return f"Segment({self.index}, {self.status.value})"

    # -- replica views -----------------------------------------------------
    # Single-replica code paths (the vast majority) address "the checker";
    # these properties keep them working unchanged over the replica list.

    @property
    def checker(self) -> Optional[Process]:
        """Replica 0's process; the only checker in non-TMR modes."""
        return self.replicas[0].process if self.replicas else None

    @checker.setter
    def checker(self, process: Optional[Process]) -> None:
        if process is None:
            self.replicas = []
        elif self.replicas:
            self.replicas[0].process = process
        else:
            self.replicas = [Replica(process, self.log.cursor())]

    @property
    def cursor(self):
        return self.replicas[0].cursor if self.replicas else None

    @cursor.setter
    def cursor(self, cursor) -> None:
        if self.replicas:
            self.replicas[0].cursor = cursor

    @property
    def replayer(self) -> Optional[ExecPointReplayer]:
        return self.replicas[0].replayer if self.replicas else None

    @replayer.setter
    def replayer(self, replayer: Optional[ExecPointReplayer]) -> None:
        if self.replicas:
            self.replicas[0].replayer = replayer

    def add_replica(self, process: Process) -> Replica:
        """Attach an extra checker replica with its own log cursor."""
        replica = Replica(process, self.log.cursor())
        self.replicas.append(replica)
        return replica

    def replica_of(self, pid: int) -> Optional[Replica]:
        """The replica owning process ``pid``, if any."""
        for replica in self.replicas:
            if replica.process is not None and replica.process.pid == pid:
                return replica
        return None

    def live_replicas(self) -> List[Replica]:
        return [r for r in self.replicas
                if r.process is not None and r.process.alive]

    def all_replicas_arrived(self) -> bool:
        return bool(self.replicas) and all(r.reached_end
                                           for r in self.replicas)

    @property
    def live(self) -> bool:
        return self.status in (SegmentStatus.RECORDING, SegmentStatus.READY,
                               SegmentStatus.CHECKING)

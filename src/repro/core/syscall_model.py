"""Per-syscall model: classification and memory effects (paper §4.3.1).

Parallaft keeps a model of each supported syscall, specifying which memory
regions might be read or written given the arguments.  That model powers
three things: checking that main and checker issue *the same* syscall
including associated data, replaying output effects into checker memory,
and classifying how each call is handled:

* **globally-effectful** — effects outside the sphere of replication
  (IO: read/write/open/close/kill).  Recorded from the main, *emulated*
  (checked + replayed) for checkers so external effects happen once.
* **process-locally-effectful** — affect only process-local state
  (brk/mmap/mprotect/munmap/prctl/sigaction).  Passed through to the OS in
  both main and checkers, with extra handling for mmap (§4.3.2).
* **non-effectful** — no external effect but nondeterministic output
  (getpid/gettimeofday/getrandom).  Recorded and replayed like
  globally-effectful calls.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro import abi

GLOBAL = "global"
LOCAL = "local"
NONEFFECTFUL = "noneffectful"

_CLASSIFICATION = {
    abi.SYS_READ: GLOBAL,
    abi.SYS_WRITE: GLOBAL,
    abi.SYS_OPEN: GLOBAL,
    abi.SYS_CLOSE: GLOBAL,
    abi.SYS_KILL: GLOBAL,
    abi.SYS_MMAP: LOCAL,
    abi.SYS_MPROTECT: LOCAL,
    abi.SYS_MUNMAP: LOCAL,
    abi.SYS_BRK: LOCAL,
    abi.SYS_SIGACTION: LOCAL,
    abi.SYS_PRCTL: LOCAL,
    abi.SYS_GETPID: NONEFFECTFUL,
    abi.SYS_GETTIMEOFDAY: NONEFFECTFUL,
    abi.SYS_GETRANDOM: NONEFFECTFUL,
}


def classify(sysno: int) -> str:
    """Classify a syscall; unknown syscalls are treated as non-effectful
    (they fail with -ENOSYS deterministically)."""
    return _CLASSIFICATION.get(sysno, NONEFFECTFUL)


def input_region(sysno: int, args: Sequence[int]) -> Optional[Tuple[int, int]]:
    """(address, length) of memory the syscall *reads*, or None.

    This is the data that must be captured for comparison: a faulty main or
    checker that computes a different ``write`` buffer must be caught.
    """
    if sysno == abi.SYS_WRITE:
        return (args[1], max(0, args[2]))
    if sysno == abi.SYS_OPEN:
        return (args[0], max(0, args[1]))
    return None


def output_region(sysno: int, args: Sequence[int],
                  result: int) -> Optional[Tuple[int, int]]:
    """(address, length) of memory the syscall *wrote*, or None.

    These bytes are captured after the main's call and injected into the
    checker's memory at replay.
    """
    if sysno == abi.SYS_READ and result > 0:
        return (args[1], result)
    if sysno == abi.SYS_GETRANDOM and result > 0:
        return (args[0], result)
    return None


def is_file_backed_mmap(sysno: int, args: Sequence[int]) -> bool:
    """File-backed private mmaps force a segment split (paper §4.3.2):
    the trailing checker's call would otherwise fail, because the file
    descriptor is not live in the checker."""
    if sysno != abi.SYS_MMAP:
        return False
    flags = args[3]
    return not (flags & abi.MAP_ANONYMOUS)


def is_shared_mmap(sysno: int, args: Sequence[int]) -> bool:
    """Shared mappings are unsupported (paper §4.3.2 leaves them to future
    work); the runtime refuses to protect programs that use them."""
    if sysno != abi.SYS_MMAP:
        return False
    return bool(args[3] & abi.MAP_SHARED)


def needs_aslr_fixup(sysno: int, args: Sequence[int]) -> bool:
    """Anonymous mmap with a kernel-chosen address: ASLR would diverge the
    checker's layout, so the replayed call is pinned with MAP_FIXED."""
    if sysno != abi.SYS_MMAP:
        return False
    return args[0] == 0 and not (args[3] & abi.MAP_FIXED)

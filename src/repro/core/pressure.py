"""Memory-pressure controller: graceful degradation under a finite frame
pool (extension beyond the paper; cf. Döbel's resource-aware replication).

Parallaft's checkpoints are COW forks whose footprint grows with the
dirty-page rate and the number of live segments (paper §4.3, Fig. 8).  With
a finite :class:`~repro.mem.frames.FramePool` budget, a production runtime
must *degrade* rather than die.  This controller watches pool utilisation
against two watermarks and escalates through an ordered ladder — each stage
trades a little protection quality or throughput for memory, and a stage-N
action never precedes stage N−1 (a checked trace invariant):

1. **stall** (``pressure_stall``) — backpressure the main, exactly like the
   ``max_live_segments`` cap: recording is what dirties pages, so pausing
   the producer lets the checkers drain.  Engaged at the low watermark,
   released below it.
2. **shed** (``pressure_shed``) — tear down the *youngest* in-flight
   checker (it has the most replay left to redo, so the least sunk work)
   and re-queue its segment; a fresh checker is re-forked from the retained
   segment-start checkpoint once pressure eases.
3. **evict** (``evict``) — reap retained recovery checkpoints oldest-first,
   but never the rollback anchor (the oldest live segment's checkpoint is
   the last verified state — recovery would be lost with it).  An evicted
   segment that later fails its check surfaces a typed
   ``checkpoint_evicted`` error instead of rolling back onto freed state.
4. **adapt** (``pressure_adapt``) — shorten the slicing period from the
   observed dirty-page rate so future segments fit in roughly
   ``pressure_segment_budget_fraction`` of the budget.  Sticky for the
   rest of the run (it only ever shrinks).

Escalation actions (2-4) run one per poll above the high watermark; the
same ladder runs synchronously as the pool's *emergency reclaim hook* when
an allocation would overrun the budget mid-quantum.  If the ladder runs
dry, the allocation fails, the kernel emits ``pressure_exhausted`` + ``oom``
and OOM-kills the allocator — the runtime sacrifices checkers (re-queuing
their segments) but lets a main OOM stand as the run's distinct exit class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro import abi
from repro.core.segment import Segment, SegmentStatus
from repro.kernel.process import ProcessState
from repro.metrics import phases as mph
from repro.trace import events as tev

if TYPE_CHECKING:
    from repro.kernel.process import Process
    from repro.core.runtime import Parallaft

#: EWMA smoothing for the observed dirty-byte rate.
_RATE_ALPHA = 0.2
#: A re-adaptation must shrink the period by at least this factor to be
#: worth another stage-4 action (prevents event spam at steady pressure).
_ADAPT_HYSTERESIS = 0.99


class PressureController:
    """Watermark-driven degradation ladder for one Parallaft run."""

    def __init__(self, rt: "Parallaft"):
        self.rt = rt
        self.config = rt.config
        self.pool = rt.kernel.pool
        #: emergency reclaim: runs inside a failing allocation.
        self.pool.reclaim_hook = self._emergency_reclaim
        #: stage-1 state: engaged = episode active; the main is only
        #: *applied* (made WAITING) when that cannot deadlock the sim.
        self.stall_engaged = False
        #: segments whose checkers were shed, awaiting a respawn.
        self._parked: List[Segment] = []
        #: checkers blocked on a failed allocation (pid -> process), held
        #: on the faulting store until retirements free frames.
        self._blocked: Dict[int, "Process"] = {}
        #: True while the ladder runs inside a failing allocation; the
        #: stage-1 stall must not park the allocator mid-quantum (it is
        #: applied at the next poll instead).
        self._in_emergency = False
        #: Highest ladder stage reached so far (real action or recorded
        #: dry pass) — the trace invariant "no stage-N action before
        #: stage N−1" is kept true by construction via ``_mark_dry``.
        self._stage_reached = 0
        #: sticky stage-4 period (same units as ``slicing_period``).
        self._adapted_period: Optional[float] = None
        #: EWMA of dirty bytes per unit of main progress.
        self._dirty_rate = 0.0
        self._last_alloc = self.pool.frames_allocated
        self._last_progress = 0.0

    # ------------------------------------------------------------- polling

    def _util(self) -> float:
        budget = self.pool.budget_bytes
        if not budget:
            return 0.0
        return self.pool.resident_bytes / budget

    def poll(self, proc: "Process", role: Optional[str]) -> None:
        """Per-quantum watermark check (called from ``on_quantum`` for
        every traced process, so pressure is re-evaluated while the main
        is stalled and only checkers make progress)."""
        if self.pool.budget_bytes is None:
            return
        if role == "main":
            self._update_rate(proc)
        util = self._util()
        if util < self.config.pressure_low_watermark:
            if self.stall_engaged:
                self._release_stall()
            self._wake_blocked()
            self._respawn_parked()
            return
        if not self.stall_engaged:
            self._engage_stall()
        else:
            self._apply_stall()
        if util >= self.config.pressure_high_watermark:
            self._escalate_once()
            # The throttle inside only readmits a checker when none is
            # runnable (the stall needs one to drain into).
            self._respawn_parked()
        else:
            self._wake_blocked()
            self._respawn_parked()

    def _update_rate(self, main: "Process") -> None:
        progress = self.rt._main_progress_units(main)
        allocated = self.pool.frames_allocated
        delta_progress = progress - self._last_progress
        if delta_progress <= 0:
            return
        delta_bytes = (allocated - self._last_alloc) * self.pool.page_size
        self._last_progress = progress
        self._last_alloc = allocated
        instant = delta_bytes / delta_progress
        self._dirty_rate = (instant if self._dirty_rate == 0.0
                            else _RATE_ALPHA * instant
                            + (1 - _RATE_ALPHA) * self._dirty_rate)

    def effective_period(self) -> Optional[float]:
        """Stage-4 adapted slicing period, or None before any adaptation."""
        return self._adapted_period

    # ------------------------------------------------------ stage 1: stall

    def note_stage(self, stage: int) -> None:
        """Record that a ladder stage was exercised (also called by the
        runtime's OOM shed path)."""
        self._stage_reached = max(self._stage_reached, stage)

    def _mark_dry(self, kind: str, stage: int) -> None:
        """Record a dry ladder rung: the controller visited stage
        ``stage`` but found no candidate, before moving on to the next
        stage.  Emitted (once) so the strict stage ordering remains
        checkable from the trace alone; bumps no counters."""
        if self._stage_reached >= stage:
            return
        self._stage_reached = stage
        self.rt._emit(kind, stage=stage, skipped=True)

    def _engage_stall(self) -> None:
        self.stall_engaged = True
        self.note_stage(1)
        self.rt.stats.pressure_stalls += 1
        self.rt._emit(tev.PRESSURE_STALL, proc=self.rt.main, stage=1,
                      resident=self.pool.resident_bytes,
                      budget=self.pool.budget_bytes)
        self._apply_stall()

    def _apply_stall(self) -> None:
        """Actually park the main, if that cannot deadlock the machine:
        some *other* runnable placed process must exist to keep virtual
        time advancing (and eventually release us)."""
        rt = self.rt
        main = rt.main
        if (self._in_emergency or rt._main_stalled_on_pressure
                or main is None or not main.alive
                or main.state is not ProcessState.RUNNING):
            return
        others = any(p.runnable and p.core is not None and p is not main
                     for p in rt.kernel.processes.values())
        if not others:
            return
        rt._main_stalled_on_pressure = True
        main.state = ProcessState.WAITING
        # Pressure backpressure is a phase of its own, distinct from the
        # containment stall — conflating them hides which subsystem is
        # holding the main back.
        rt.profiler.open_span(main.pid, mph.PRESSURE_STALL)
        rt._emit(tev.MAIN_STALL, proc=main,
                 segment=rt.current.index if rt.current else None,
                 reason=tev.STALL_PRESSURE)

    def _release_stall(self) -> None:
        self.stall_engaged = False
        self.rt._maybe_wake_stalled_main()

    def force_release_stall(self) -> None:
        """Liveness override (from the OOM path): give up the stage-1
        stall so the main can run — over budget beats wedged."""
        self._release_stall()

    # -------------------------------------------------- stages 2-4, escalation

    def _escalate_once(self) -> None:
        if self._shed_one():
            return
        self._mark_dry(tev.PRESSURE_SHED, 2)
        if self._evict_one():
            return
        self._mark_dry(tev.EVICT, 3)
        self._adapt()

    def _shed_one(self) -> bool:
        """Stage 2: sacrifice the youngest running checker, park its
        segment for a respawn from the retained checkpoint."""
        rt = self.rt
        current = rt.executor.current_proc
        candidates = [
            s for s in rt.sched.running
            if s.live_replicas()
            and all(r.process is not current for r in s.replicas)
            and s.recovery_checkpoint is not None
            and not s.checkpoint_evicted
            and s.sheds < self.config.pressure_max_segment_sheds]
        if not candidates:
            return False
        segment = max(candidates, key=lambda s: s.index)
        before = self.pool.resident_bytes
        # Shed the whole replica set: a respawn re-forks every replica
        # from the retained checkpoint, so keeping a subset would only
        # hold memory without ever producing a vote.
        for replica in segment.replicas:
            checker = replica.process
            rt.segment_of_checker.pop(checker.pid, None)
            rt._stalled_checkers.discard(checker.pid)
            self._blocked.pop(checker.pid, None)
            if checker.alive:
                rt.kernel.exit_process(checker, 128 + abi.SIGKILL)
            rt.kernel.reap(checker)
        rt.sched.on_checker_done(segment)
        segment.checker = None
        segment.sheds += 1
        segment.status = SegmentStatus.READY
        self._parked.append(segment)
        self.note_stage(2)
        rt.stats.pressure_sheds += 1
        rt._emit(tev.PRESSURE_SHED, segment=segment.index, stage=2,
                 freed=before - self.pool.resident_bytes)
        return True

    def _evict_one(self) -> bool:
        """Stage 3: reap a retained recovery checkpoint, oldest-first.

        Never the oldest live segment's (the rollback anchor — the last
        verified state) and never a parked segment's (its checkpoint is
        the only source its replacement checker can be forked from)."""
        rt = self.rt
        retaining = sorted(
            (s for s in rt.segments
             if s.live and s.recovery_checkpoint is not None
             and s not in self._parked),
            key=lambda s: s.index)
        if len(retaining) < 2:
            return False
        victim = retaining[1]  # oldest-first, skipping the anchor
        before = self.pool.resident_bytes
        rt.roles.pop(victim.recovery_checkpoint.pid, None)
        rt.kernel.reap(victim.recovery_checkpoint)
        victim.recovery_checkpoint = None
        victim.checkpoint_evicted = True
        self.note_stage(3)
        rt.stats.pressure_evictions += 1
        rt._emit(tev.EVICT, segment=victim.index, stage=3,
                 freed=before - self.pool.resident_bytes)
        return True

    def _adapt(self) -> bool:
        """Stage 4: shrink the slicing period so one segment dirties about
        ``pressure_segment_budget_fraction`` of the budget."""
        if self._dirty_rate <= 0.0:
            return False
        base = self.config.slicing_period
        if base == float("inf"):
            return False
        target_bytes = (self.pool.budget_bytes
                        * self.config.pressure_segment_budget_fraction)
        period = target_bytes / self._dirty_rate
        floor = base * self.config.pressure_min_period_scale
        period = max(floor, min(period, base))
        current = (self._adapted_period if self._adapted_period is not None
                   else base)
        if period >= current * _ADAPT_HYSTERESIS:
            return False
        self._adapted_period = period
        self.note_stage(4)
        self.rt.stats.pressure_adaptations += 1
        self.rt._emit(tev.PRESSURE_ADAPT, stage=4, period=period,
                      dirty_rate=self._dirty_rate)
        return True

    # ------------------------------------------------------ respawn / liveness

    def park(self, segment: Segment) -> None:
        """Park a segment whose checker the OOM path sacrificed."""
        if segment not in self._parked:
            self._parked.append(segment)
        self._respawn_parked()

    def block_checker(self, proc: "Process", segment: Segment) -> None:
        """Hold a checker on its faulting store (kernel found the stop
        resumable): it retries once retirements free frames."""
        proc.state = ProcessState.WAITING
        self._blocked[proc.pid] = proc
        self.rt.profiler.open_span(proc.pid, mph.CHECKER_STALL)
        self.rt._emit(tev.CHECKER_STALL, proc=proc, segment=segment.index,
                      reason="memory")

    def _wake_blocked(self, force: bool = False) -> None:
        """Resume blocked checkers once utilisation leaves the escalation
        band (their retried stores re-enter reclaim if it returns)."""
        if not self._blocked:
            return
        if not force:
            if self._util() >= self.config.pressure_high_watermark:
                return
            # A blocked checker needs at least one whole page: waking it
            # into fractional headroom just re-faults the same store at
            # zero virtual cost and livelocks the wake/block pair.
            if (self.pool.budget_bytes is not None
                    and (self.pool.budget_bytes - self.pool.resident_bytes)
                    < self.pool.page_size):
                return
        for pid in list(self._blocked):
            proc = self._blocked.pop(pid)
            if not proc.alive or proc.state is not ProcessState.WAITING:
                continue
            proc.state = ProcessState.RUNNING
            proc.ready_time = max(proc.ready_time,
                                  self.rt.executor.current_time)
            self.rt.profiler.close_span(pid)
            segment = self.rt.segment_of_checker.get(pid)
            self.rt._emit(tev.CHECKER_WAKE, proc=proc,
                          segment=segment.index if segment else None)

    def _respawn_parked(self, force: bool = False) -> None:
        """Re-fork one parked segment's checker (all of them when forced).

        Respawns are throttled to one per call below the high watermark;
        when nothing else in the machine is runnable the throttle is
        overridden — a parked segment must never be the reason the run
        deadlocks short of completion."""
        rt = self.rt
        while self._parked:
            segment = self._parked[0]
            if (not segment.live or segment.retired
                    or segment.recovery_checkpoint is None):
                self._parked.pop(0)  # rolled back / discarded meanwhile
                continue
            allowed = (force
                       or self._util() < self.config.pressure_high_watermark
                       or not self._any_checker_runnable())
            if not allowed:
                break
            self._parked.pop(0)
            rt._respawn_checker(
                segment,
                f"checker-{segment.index}-shed{segment.sheds}",
                cause="pressure_requeue")
            if not force:
                break
        self._ensure_liveness()

    def _anything_runnable(self) -> bool:
        return any(p.runnable and p.core is not None
                   for p in self.rt.kernel.processes.values())

    def _any_checker_runnable(self) -> bool:
        return any(p.runnable and p.core is not None
                   and self.rt.roles.get(p.pid) == "checker"
                   for p in self.rt.kernel.processes.values())

    def _ensure_liveness(self) -> None:
        """Nothing runnable must never be a terminal state while work
        remains: force-wake blocked checkers (they retry, and the OOM
        path decides again), and release a pressure stall so the main can
        run over budget (allocations then fail into the OOM path, which
        is the designed outcome — never a hang)."""
        rt = self.rt
        if self._anything_runnable():
            return
        if self._blocked:
            self._wake_blocked(force=True)
            if self._anything_runnable():
                return
        main = rt.main
        if (self.stall_engaged and main is not None and main.alive
                and main.state is ProcessState.WAITING):
            self._release_stall()

    def on_checker_exit(self) -> None:
        """A checker died (possibly OOM-killed mid-escalation): if it was
        the last runnable process, force-wake any blocked peers — each
        retries its allocation and the OOM path decides its fate again,
        so the run always drains instead of hanging with parked work."""
        self._ensure_liveness()

    def on_retire(self) -> None:
        """A segment retired (memory was freed): re-evaluate the stall and
        give parked segments a chance to respawn."""
        if self.pool.budget_bytes is None:
            return
        if (self.stall_engaged
                and self._util() < self.config.pressure_low_watermark):
            self._release_stall()
        self._wake_blocked()
        self._respawn_parked()

    def on_main_exit(self) -> None:
        """The main exited: every parked segment must still be verified,
        so respawn them all (and resume blocked checkers) for the tail
        phase."""
        self._wake_blocked(force=True)
        self._respawn_parked(force=True)

    def on_rollback(self) -> None:
        """Recovery replaced the main; the old stall died with it."""
        # stall_engaged survives (pressure has not eased); the new main is
        # re-stalled at the next poll if needed.

    # ------------------------------------------------------ emergency reclaim

    def _emergency_reclaim(self, needed: int) -> None:
        """The pool cannot satisfy an allocation: run the ladder
        synchronously, stage by stage, until there is headroom or the
        ladder is dry (the pool then raises and the kernel OOM-kills)."""
        pool = self.pool
        budget = pool.budget_bytes
        if budget is None:
            return
        self._in_emergency = True
        try:
            if not self.stall_engaged:
                # Engaged but NOT applied (the allocator may be the main,
                # mid-quantum); the next poll parks it.
                self._engage_stall()
            while pool.resident_bytes + needed > budget:
                if not self._shed_one():
                    break
            if pool.resident_bytes + needed > budget:
                self._mark_dry(tev.PRESSURE_SHED, 2)
            while pool.resident_bytes + needed > budget:
                if not self._evict_one():
                    break
            if pool.resident_bytes + needed > budget:
                # Cannot help *this* allocation, but future segments can
                # be sliced to fit.
                self._mark_dry(tev.EVICT, 3)
                self._adapt()
        finally:
            self._in_emergency = False
